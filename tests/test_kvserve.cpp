// kvserve: the sharded KV/RPC service under open-loop Zipf traffic (ISSUE 9),
// plus the Stats::Summary log2-bucket/percentile extension and the
// invoke_shm full-queue starvation fix it exposed.
//
// Determinism contract: two equal-seed runs must be bit-identical in every
// observable — counters, completed/failed, duration, and the full latency
// histogram (count/sum/min/max and every bucket). The queue regression pins
// the overflow fix: a target busy in one long compute keeps its shm invoke
// queue at capacity; the old fixed 64x256-cycle retry gave up with a
// spurious QueueFull even though the owner would have drained, while the
// fixed retrier waits out any drain pause shorter than the watchdog-scale
// stall budget.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/kvserve.hpp"
#include "core/machine.hpp"
#include "runtime/context.hpp"
#include "runtime/shared_queue.hpp"
#include "sim/fault.hpp"
#include "sim/stats.hpp"

namespace alewife {
namespace {

// ---- Stats::Summary log2 buckets + percentiles ------------------------------

TEST(StatsSummary, BucketBoundaries) {
  EXPECT_EQ(Stats::Summary::bucket_of(0), 0u);
  EXPECT_EQ(Stats::Summary::bucket_of(1), 1u);
  EXPECT_EQ(Stats::Summary::bucket_of(2), 2u);
  EXPECT_EQ(Stats::Summary::bucket_of(3), 2u);
  EXPECT_EQ(Stats::Summary::bucket_of(4), 3u);
  EXPECT_EQ(Stats::Summary::bucket_of(1023), 10u);
  EXPECT_EQ(Stats::Summary::bucket_of(1024), 11u);
  EXPECT_EQ(Stats::Summary::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(StatsSummary, ObserveFillsBucketsAndMinMax) {
  Stats::Summary s;
  for (std::uint64_t v : {0ull, 1ull, 3ull, 100ull, 100ull, 5000ull}) {
    s.observe(v);
  }
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.sum, 5204u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 5000u);
  EXPECT_EQ(s.buckets[0], 1u);   // value 0
  EXPECT_EQ(s.buckets[1], 1u);   // value 1
  EXPECT_EQ(s.buckets[2], 1u);   // value 3
  EXPECT_EQ(s.buckets[7], 2u);   // 100 in [64, 127]
  EXPECT_EQ(s.buckets[13], 1u);  // 5000 in [4096, 8191]
}

TEST(StatsSummary, PercentilesOrderedAndClamped) {
  Stats::Summary s;
  for (std::uint64_t v = 1; v <= 1000; ++v) s.observe(v);
  const double p50 = s.percentile(0.50);
  const double p99 = s.percentile(0.99);
  const double p999 = s.percentile(0.999);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  // Bucket resolution is a power of two; p50 of uniform 1..1000 must land
  // in the right half of [256, 511].
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p999, 512.0);
  EXPECT_LE(p999, 1000.0);  // clamped to the observed max
  // Degenerate cases: empty summary reports 0; single sample reports itself.
  EXPECT_EQ(Stats::Summary{}.percentile(0.99), 0.0);
  Stats::Summary one;
  one.observe(42);
  EXPECT_EQ(one.percentile(0.50), 42.0);
  EXPECT_EQ(one.percentile(0.999), 42.0);
}

TEST(StatsSummary, MergeAddsBuckets) {
  Stats::Summary a, b;
  a.observe(10);
  a.observe(100);
  b.observe(1000);
  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.min, 10u);
  EXPECT_EQ(a.max, 1000u);
  EXPECT_EQ(a.buckets[4], 1u);
  EXPECT_EQ(a.buckets[7], 1u);
  EXPECT_EQ(a.buckets[10], 1u);
  // Merging an empty summary is a no-op.
  a.merge(Stats::Summary{});
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.min, 10u);
}

// ---- kvserve determinism + counters -----------------------------------------

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Digest of everything a kvserve run can observably produce: machine time,
/// event count, counters, and the full latency summary including buckets.
std::uint64_t kv_digest(Machine& m, const apps::KvServeResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, m.sim().now());
  h = fnv1a(h, m.sim().events_executed());
  h = fnv1a(h, r.duration);
  h = fnv1a(h, r.completed);
  h = fnv1a(h, r.failed);
  h = fnv1a(h, r.latency.count);
  h = fnv1a(h, r.latency.sum);
  h = fnv1a(h, r.latency.min);
  h = fnv1a(h, r.latency.max);
  for (const std::uint64_t b : r.latency.buckets) h = fnv1a(h, b);
  for (const auto& [name, value] : m.stats().counters()) {
    for (unsigned char c : name) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
    h = fnv1a(h, value);
  }
  return h;
}

apps::KvServeConfig small_cfg() {
  apps::KvServeConfig kc;
  kc.requests = 512;
  kc.load = 64;
  kc.keys = 512;
  return kc;
}

TEST(KvServe, EqualSeedRunsBitIdentical) {
  const apps::KvServeConfig kc = small_cfg();
  const auto one = [&kc] {
    MachineConfig c;
    c.nodes = 16;
    Machine m(c);
    const apps::KvServeResult r = apps::kvserve_run(m, kc);
    return kv_digest(m, r);
  };
  EXPECT_EQ(one(), one());
}

TEST(KvServe, SeedChangesTheRun) {
  const apps::KvServeConfig kc = small_cfg();
  const auto one = [&kc](std::uint64_t seed) {
    MachineConfig c;
    c.nodes = 16;
    c.rng_seed = seed;
    Machine m(c);
    const apps::KvServeResult r = apps::kvserve_run(m, kc);
    return kv_digest(m, r);
  };
  EXPECT_NE(one(1), one(2));
}

TEST(KvServe, CountersAndLatencyAreConsistent) {
  MachineConfig c;
  c.nodes = 8;
  Machine m(c);
  apps::KvServeConfig kc = small_cfg();
  const apps::KvServeResult r = apps::kvserve_run(m, kc);
  Stats& st = m.stats();

  EXPECT_EQ(r.completed, kc.requests);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.latency.count, r.completed);
  EXPECT_GT(r.duration, 0u);
  // Every completed request is exactly one of get/put/scan.
  EXPECT_EQ(st.get(MetricId::kKvGets) + st.get(MetricId::kKvPuts) +
                st.get(MetricId::kKvScans),
            r.completed);
  // Zipf skew makes the hot set dominate, so the shm fast path must fire.
  EXPECT_GT(st.get(MetricId::kKvHotReads), 0u);
  EXPECT_GT(st.get(MetricId::kKvPuts), 0u);
  EXPECT_GT(st.get(MetricId::kKvScans), 0u);
  // The configured migration ran and moved the whole shard image.
  EXPECT_EQ(st.get(MetricId::kKvMigrations), 1u);
  EXPECT_GT(st.get(MetricId::kKvMigratedBytes), 0u);
  // Percentiles are ordered and inside the observed range.
  const double p50 = r.latency.percentile(0.50);
  const double p999 = r.latency.percentile(0.999);
  EXPECT_LE(p50, p999);
  EXPECT_GE(p50, double(r.latency.min));
  EXPECT_LE(p999, double(r.latency.max));
}

TEST(KvServe, ShmTransportAlsoCompletes) {
  MachineConfig c;
  c.nodes = 8;
  Machine m(c);
  apps::KvServeConfig kc = small_cfg();
  kc.transport = apps::KvTransport::kShm;
  const apps::KvServeResult r = apps::kvserve_run(m, kc);
  EXPECT_EQ(r.completed, kc.requests);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GT(m.stats().get(MetricId::kRtInvokesShm), 0u);
}

// ---- typed degradation when a shard home dies -------------------------------

TEST(KvServeCrash, HomeNodeDownFailsTypedAndBounded) {
  MachineConfig c;
  c.nodes = 8;
  c.fault.node_downs.push_back(FaultConfig::parse_node_down("2@3000"));
  RuntimeOptions o;
  // Work stealing off: a task stolen by a node that later fail-stops is lost
  // with it — outstanding-invoke tracking only covers the original dispatch
  // target, so the orphaned future neither fills nor fails and the toucher
  // waits until the watchdog trips. That runtime gap is independent of
  // kvserve; this test pins the shard-home-death contract, so it opts out of
  // stealing rather than depend on which node happens to run each RPC.
  o.stealing = false;
  Machine m(c, o);
  apps::KvServeConfig kc;
  kc.requests = 1024;
  kc.load = 128;
  kc.keys = 512;
  kc.migrations = 0;
  // Must not throw: every in-flight request against the dead home surfaces
  // as a typed NodeFaultError inside the client loop, which counts it and
  // keeps serving the live shards.
  const apps::KvServeResult r = apps::kvserve_run(m, kc);
  Stats& st = m.stats();
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.failed, 0u);
  EXPECT_GT(st.get(MetricId::kKvFailed) + st.get(MetricId::kKvDropped), 0u);
  // Once the failure detector's verdict lands, later requests are shed on
  // the fast path instead of paying the retransmit timeout again.
  EXPECT_GT(st.get(MetricId::kKvDropped), 0u);
}

// ---- invoke_shm overflow starvation regression ------------------------------

// Failing-before test for the satellite bugfix: capacity-2 queue on a target
// that is busy in one 40000-cycle compute. The old fixed retry budget
// (64 x 256 = ~16K cycles) threw QueueFull long before the target could
// drain; the progress-based retrier must ride out the pause and deliver
// every invoke.
TEST(KvQueue, SustainedOverflowOutlivesABusyOwner) {
  MachineConfig c;
  c.nodes = 2;
  RuntimeOptions o;
  o.queue_capacity = 2;
  Machine m(c, o);
  auto sum = std::make_shared<std::uint64_t>(0);
  m.start_thread(1, [](Context& ctx) { ctx.compute(40000); });
  m.start_thread(0, [sum](Context& ctx) {
    std::vector<FutureId> fs;
    for (std::uint64_t i = 0; i < 6; ++i) {
      fs.push_back(ctx.invoke_shm(
          1, [i](Context&) -> std::uint64_t { return i + 1; }));
    }
    for (const FutureId f : fs) *sum += ctx.touch(f);
  });
  m.run_started();
  EXPECT_EQ(*sum, 21u);  // 1+2+...+6: every invoke ran exactly once
  // The overflow gauge counts episodes, not retries: the old loop inflated
  // this by up to 64x per stalled push.
  const std::uint64_t full = m.stats().get(MetricId::kRtQueueFull);
  EXPECT_GE(full, 1u);
  EXPECT_LE(full, 6u);
}

// A genuinely wedged target (no drain progress for the whole watchdog-scale
// stall budget) must still fail loudly instead of hanging forever.
TEST(KvQueue, FrozenOwnerStillThrowsQueueFull) {
  MachineConfig c;
  c.nodes = 2;
  RuntimeOptions o;
  o.queue_capacity = 2;
  Machine m(c, o);
  auto threw = std::make_shared<bool>(false);
  // The owner never yields: 3M cycles exceeds the 1M-cycle stall budget.
  m.start_thread(1, [](Context& ctx) { ctx.compute(3'000'000); });
  m.start_thread(0, [threw](Context& ctx) {
    try {
      for (int i = 0; i < 3; ++i) {
        ctx.invoke_shm(1, [](Context&) -> std::uint64_t { return 0; });
      }
    } catch (const QueueFull&) {
      *threw = true;
    }
  });
  m.run_started();
  EXPECT_TRUE(*threw);
}

}  // namespace
}  // namespace alewife
