// Collectives-library tests (docs/COLLECTIVES.md): every operation against
// host-computed expected results across shm / msg / hybrid mechanisms, proc
// and CMMU combining sides, several arities and group shapes, and ragged
// (non-power-of-two) machines — plus fault-injected runs, checker-armed runs,
// and shards 1/2/4 digest equality for the acceptance ops.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "core/machine.hpp"
#include "runtime/barrier.hpp"
#include "runtime/collective.hpp"

namespace alewife {
namespace {

MachineConfig cfg(std::uint32_t nodes) {
  MachineConfig c;
  c.nodes = nodes;
  c.max_cycles = 500'000'000;
  return c;
}

RuntimeOptions quiet() {
  RuntimeOptions o;
  o.stealing = false;
  return o;
}

void add_faults(MachineConfig& c) {
  c.fault.drop_rate = 0.05;
  c.fault.dup_rate = 0.03;
  c.fault.corrupt_rate = 0.02;
  c.fault.delay_rate = 0.05;
  c.fault.seed = 0xC0117u;
}

// Host-computed references for the value collectives, contribution f(n, e).
std::uint64_t contrib(NodeId n, int e) { return n * 3ull + 11 + e; }

std::uint64_t ref_sum(std::uint32_t nodes, int e) {
  std::uint64_t s = 0;
  for (NodeId n = 0; n < nodes; ++n) s += contrib(n, e);
  return s;
}

/// Run `episodes` rounds of barrier + reduce + allreduce(sum/min/max) +
/// broadcast (root 0 and root nodes-1) through `comm`, checking every result
/// in-thread against the host-computed reference.
void run_value_ops(Machine& m, Communicator& comm, int episodes) {
  const std::uint32_t nodes = m.nodes();
  auto arrivals = std::make_shared<std::uint32_t>(0);
  for (NodeId n = 0; n < nodes; ++n) {
    m.start_thread(n, [=, &comm](Context& ctx) {
      const NodeId me = ctx.node();
      for (int e = 0; e < episodes; ++e) {
        ctx.compute((me * 13 + e * 7) % 96);  // skew the arrivals

        ++*arrivals;
        comm.barrier(ctx);
        EXPECT_EQ(*arrivals, std::uint32_t(e + 1) * nodes)
            << "node " << me << " episode " << e;

        const std::uint64_t red = comm.reduce(ctx, contrib(me, e));
        if (me == 0) {
          EXPECT_EQ(red, ref_sum(nodes, e)) << "episode " << e;
        }

        EXPECT_EQ(comm.allreduce(ctx, contrib(me, e)), ref_sum(nodes, e))
            << "node " << me << " episode " << e;
        EXPECT_EQ(comm.allreduce(ctx, contrib(me, e), RedOp::kMin),
                  contrib(0, e))
            << "node " << me << " episode " << e;
        EXPECT_EQ(comm.allreduce(ctx, contrib(me, e), RedOp::kMax),
                  contrib(nodes - 1, e))
            << "node " << me << " episode " << e;

        // Non-root contributions to broadcast must be ignored.
        const std::uint64_t junk = 0xDEAD0000ull + me;
        EXPECT_EQ(comm.broadcast(ctx, me == 0 ? 0xB0 + e : junk, 0),
                  std::uint64_t(0xB0 + e));
        const NodeId last = nodes - 1;
        EXPECT_EQ(comm.broadcast(ctx, me == last ? 0xC0 + e : junk, last),
                  std::uint64_t(0xC0 + e));
      }
    });
  }
  m.run_started();
  EXPECT_EQ(*arrivals, std::uint32_t(episodes) * nodes);
}

/// One scatter + gather round trip with byte-pattern verification: root 0
/// scatters a patterned buffer, every node checks its slice, doubles it,
/// gathers it back, and the root checks the transformed whole.
void run_data_ops(Machine& m, Communicator& comm, std::uint32_t bytes) {
  const std::uint32_t nodes = m.nodes();
  BackingStore& store = m.runtime().ms.store();
  const GAddr rootbuf = store.alloc(0, std::uint64_t{nodes} * bytes);
  auto local = std::make_shared<std::vector<GAddr>>();
  for (NodeId i = 0; i < nodes; ++i) local->push_back(store.alloc(i, bytes));
  auto pattern = [](std::uint64_t off) { return off * 0x9E3779B97F4A7C15ull; };
  for (std::uint64_t off = 0; off < std::uint64_t{nodes} * bytes; off += 8) {
    store.write_uint(rootbuf + off, 8, pattern(off));
  }

  for (NodeId n = 0; n < nodes; ++n) {
    m.start_thread(n, [=, &comm](Context& ctx) {
      const NodeId me = ctx.node();
      const GAddr mine = (*local)[me];
      comm.scatter(ctx, rootbuf, mine, bytes);
      for (std::uint32_t off = 0; off < bytes; off += 8) {
        EXPECT_EQ(ctx.load(mine + off), pattern(me * bytes + off))
            << "node " << me << " offset " << off;
        ctx.store(mine + off, ctx.load(mine + off) * 2);
      }
      comm.gather(ctx, mine, rootbuf, bytes);
      if (me == 0) {  // gather is synchronizing: all slices have landed
        for (std::uint64_t off = 0; off < std::uint64_t{nodes} * bytes;
             off += 8) {
          EXPECT_EQ(ctx.load(rootbuf + off), pattern(off) * 2)
              << "offset " << off;
        }
      }
    });
  }
  m.run_started();
}

struct Pt {
  std::uint32_t nodes;
  CollMech mech;
  Combining comb;
  std::uint32_t arity;  // 0 = mechanism default
  std::uint32_t group;  // 0 = arity (hybrid only)
};

std::string pt_name(const ::testing::TestParamInfo<Pt>& i) {
  const Pt& p = i.param;
  std::string s = "n" + std::to_string(p.nodes);
  s += p.mech == CollMech::kShm    ? "Shm"
       : p.mech == CollMech::kMsg  ? "Msg"
                                   : "Hybrid";
  s += p.comb == Combining::kCmmu ? "Cmmu" : "Proc";
  s += "a" + std::to_string(p.arity);
  if (p.group) s += "g" + std::to_string(p.group);
  return s;
}

CollectiveConfig pt_cfg(const Pt& p) {
  CollectiveConfig c;
  c.mech = p.mech;
  c.combining = p.comb;
  c.arity = p.arity;
  c.group = p.group;
  return c;
}

class CollectiveOps : public ::testing::TestWithParam<Pt> {};

TEST_P(CollectiveOps, ValueOpsMatchHostReference) {
  const Pt p = GetParam();
  Machine m(cfg(p.nodes), quiet());
  Communicator comm(m.runtime(), pt_cfg(p));
  run_value_ops(m, comm, /*episodes=*/3);
}

TEST_P(CollectiveOps, ScatterGatherRoundTrip) {
  const Pt p = GetParam();
  Machine m(cfg(p.nodes), quiet());
  Communicator comm(m.runtime(), pt_cfg(p));
  run_data_ops(m, comm, /*bytes=*/64);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollectiveOps,
    ::testing::Values(
        // 8 nodes: every mechanism and both combining sides.
        Pt{8, CollMech::kShm, Combining::kProc, 2, 0},
        Pt{8, CollMech::kMsg, Combining::kProc, 2, 0},
        Pt{8, CollMech::kMsg, Combining::kCmmu, 8, 0},
        Pt{8, CollMech::kHybrid, Combining::kProc, 2, 4},
        Pt{8, CollMech::kHybrid, Combining::kCmmu, 4, 0},
        // Ragged machines: incomplete trees and a short final group.
        Pt{13, CollMech::kMsg, Combining::kProc, 3, 0},
        Pt{13, CollMech::kHybrid, Combining::kCmmu, 2, 4},
        // Mid sizes and arity variety.
        Pt{16, CollMech::kShm, Combining::kProc, 4, 0},
        Pt{32, CollMech::kMsg, Combining::kCmmu, 4, 0},
        // 64 nodes: the paper's machine size.
        Pt{64, CollMech::kShm, Combining::kProc, 2, 0},
        Pt{64, CollMech::kMsg, Combining::kProc, 8, 0},
        Pt{64, CollMech::kMsg, Combining::kCmmu, 8, 0},
        Pt{64, CollMech::kHybrid, Combining::kCmmu, 8, 8}),
    pt_name);

TEST(Collectives, ChunkedScatterGather) {
  // Slices bigger than the chunk size: 128-byte slices pushed as 32-byte
  // DMA chunks (4 messages per slice).
  for (CollMech mech : {CollMech::kMsg, CollMech::kHybrid}) {
    Machine m(cfg(8), quiet());
    CollectiveConfig c;
    c.mech = mech;
    c.chunk_bytes = 32;
    Communicator comm(m.runtime(), c);
    run_data_ops(m, comm, /*bytes=*/128);
  }
}

TEST(Collectives, SingleNodeIsTrivial) {
  Machine m(cfg(1), quiet());
  for (CollMech mech : {CollMech::kShm, CollMech::kMsg, CollMech::kHybrid}) {
    CollectiveConfig c;
    c.mech = mech;
    Communicator comm(m.runtime(), c);
    m.start_thread(0, [&comm](Context& ctx) {
      comm.barrier(ctx);
      EXPECT_EQ(comm.allreduce(ctx, 7), 7u);
      EXPECT_EQ(comm.broadcast(ctx, 9), 9u);
    });
    m.run_started();
  }
}

TEST(Collectives, ScatterGatherRejectBadBytes) {
  Machine m(cfg(4), quiet());
  Communicator comm(m.runtime());
  m.start_thread(0, [&m, &comm](Context& ctx) {
    const GAddr buf = ctx.shmalloc(0, 64);
    EXPECT_THROW(comm.scatter(ctx, buf, buf, 12), std::invalid_argument);
    EXPECT_THROW(comm.gather(ctx, buf, buf, 0), std::invalid_argument);
    (void)m;
  });
  m.run_started();
}

TEST(Collectives, BarrierOnlyConfigRejectsValueOps) {
  // The CombiningBarrier shim provisions just the barrier; the richer
  // operations must fail loudly, not misbehave.
  Machine m(cfg(4), quiet());
  CollectiveConfig c;
  c.barrier_only = true;
  Communicator comm(m.runtime(), c);
  m.start_thread(0, [&comm](Context& ctx) {
    const GAddr buf = ctx.shmalloc(0, 64);
    EXPECT_THROW(comm.scatter(ctx, buf, buf, 8), std::logic_error);
  });
  m.run_started();
}

TEST(Collectives, TwoCommunicatorsCoexist) {
  // The registry hands each Communicator its own message-type block; ops on
  // the two must not cross wires even when interleaved.
  Machine m(cfg(8), quiet());
  Communicator a(m.runtime(), {CollMech::kMsg, Combining::kProc, 2});
  Communicator b(m.runtime(), {CollMech::kMsg, Combining::kCmmu, 4});
  EXPECT_NE(a.type_base(), b.type_base());
  const std::uint32_t nodes = m.nodes();
  for (NodeId n = 0; n < nodes; ++n) {
    m.start_thread(n, [&a, &b, nodes](Context& ctx) {
      const NodeId me = ctx.node();
      EXPECT_EQ(a.allreduce(ctx, me), nodes * (nodes - 1) / 2);
      EXPECT_EQ(b.allreduce(ctx, 1), nodes);
      EXPECT_EQ(a.broadcast(ctx, me == 0 ? 55u : 0u), 55u);
      b.barrier(ctx);
    });
  }
  m.run_started();
}

TEST(Collectives, ShimBarrierSharesTheMachine) {
  // The deprecated CombiningBarrier shim and a full Communicator coexist:
  // the shim pins legacy message types, the Communicator allocates from the
  // registry.
  Machine m(cfg(8), quiet());
  CombiningBarrier bar(m.runtime(), CombiningBarrier::Mech::kMsg, 4);
  Communicator comm(m.runtime(), {CollMech::kMsg, Combining::kCmmu});
  auto phase = std::make_shared<int>(0);
  for (NodeId n = 0; n < 8; ++n) {
    m.start_thread(n, [&bar, &comm, phase](Context& ctx) {
      bar.wait(ctx);
      if (ctx.node() == 0) *phase = 1;
      EXPECT_EQ(comm.allreduce(ctx, 1), 8u);
      EXPECT_EQ(*phase, 1);
      bar.wait(ctx);
    });
  }
  m.run_started();
}

TEST(Collectives, RegistryExhaustionIsTyped) {
  Machine m(cfg(2), quiet());
  MsgTypeRegistry& reg = m.runtime().msg_types;
  EXPECT_THROW(reg.allocate(0), MsgTypeExhausted);
  const MsgType rem = reg.remaining();
  EXPECT_GT(rem, 3u);  // room for many Communicators
  EXPECT_NO_THROW(reg.allocate(rem));
  EXPECT_EQ(reg.remaining(), 0u);
  EXPECT_THROW(reg.allocate(1), MsgTypeExhausted);
}

TEST(Collectives, OracleRanksAndSelectorAgrees) {
  // The §6 selection hook: predictions are positive, grow with machine size,
  // CMMU combining is predicted no slower than proc combining, and the
  // adaptive selector returns the argmin of the three predictions.
  MachineConfig c = cfg(64);
  CostOracle o(c);
  EXPECT_GT(o.predict_coll_shm(64, 2), 0u);
  EXPECT_GT(o.predict_coll_msg(64, 8, Combining::kProc),
            o.predict_coll_msg(8, 8, Combining::kProc));
  EXPECT_LE(o.predict_coll_msg(64, 8, Combining::kCmmu),
            o.predict_coll_msg(64, 8, Combining::kProc));
  Machine m(c, quiet());
  AdaptiveOps ops(m);
  const CollMech pick = ops.choose_collective(8, 8, Combining::kCmmu);
  const Cycles shm = o.predict_coll_shm(64, 8);
  const Cycles msg = o.predict_coll_msg(64, 8, Combining::kCmmu);
  const Cycles hyb = o.predict_coll_hybrid(64, 8, 8, Combining::kCmmu);
  const Cycles best = std::min(shm, std::min(msg, hyb));
  const Cycles picked = pick == CollMech::kShm   ? shm
                        : pick == CollMech::kMsg ? msg
                                                 : hyb;
  EXPECT_EQ(picked, best);
}

TEST(Collectives, SurvivesFaultInjection) {
  // Drops, dups, corruption and delays under the reliable layer: every
  // result must still be exact, for both combining sides and the data ops.
  for (Combining comb : {Combining::kProc, Combining::kCmmu}) {
    MachineConfig c = cfg(8);
    add_faults(c);
    Machine m(c, quiet());
    Communicator comm(m.runtime(), {CollMech::kMsg, comb});
    run_value_ops(m, comm, /*episodes=*/2);
  }
  MachineConfig c = cfg(8);
  add_faults(c);
  Machine m(c, quiet());
  CollectiveConfig cc;
  cc.mech = CollMech::kHybrid;
  cc.chunk_bytes = 16;
  Communicator comm(m.runtime(), cc);
  run_data_ops(m, comm, /*bytes=*/64);
}

TEST(Collectives, ChecksCleanUnderGoldenModel) {
  // The golden-model checker observes every load/store/atomic/DMA the
  // collectives issue; any stale value or protocol violation trips it.
  for (CollMech mech : {CollMech::kShm, CollMech::kMsg, CollMech::kHybrid}) {
    MachineConfig c = cfg(8);
    c.check.enabled = true;
    Machine m(c, quiet());
    CollectiveConfig cc;
    cc.mech = mech;
    Communicator comm(m.runtime(), cc);
    run_value_ops(m, comm, /*episodes=*/2);
  }
  MachineConfig c = cfg(8);
  c.check.enabled = true;
  Machine m(c, quiet());
  CollectiveConfig cc;
  cc.mech = CollMech::kHybrid;
  Communicator comm(m.runtime(), cc);
  run_data_ops(m, comm, /*bytes=*/64);
}

// ---------------------------------------------------------------------------
// Sharded-engine digest equality (the acceptance gate): barrier, reduce,
// allreduce and broadcast must produce bit-identical full-machine digests at
// shards 1, 2 and 4 with equal seeds — also under fault injection and with
// the checker armed.
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t digest(Machine& m, std::uint64_t app_result) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, m.sim().now());
  h = fnv1a(h, m.sim().events_executed());
  h = fnv1a(h, app_result);
  for (const auto& [name, value] : m.stats().counters()) {
    h = fnv1a(h, name);
    h = fnv1a(h, value);
  }
  return h;
}

std::uint64_t wl_collectives(MachineConfig c, const CollectiveConfig& cc) {
  RuntimeOptions o;
  o.mode = SchedMode::kHybrid;
  o.stealing = false;
  Machine m(c, o);
  Communicator comm(m.runtime(), cc);
  HostBarrier align(m, c.nodes);
  auto mix = std::make_shared<std::vector<std::uint64_t>>(c.nodes, 0);
  for (NodeId n = 0; n < c.nodes; ++n) {
    m.start_thread(n, [=, &comm, &align](Context& ctx) {
      const NodeId me = ctx.node();
      std::uint64_t& acc = (*mix)[me];
      for (int e = 0; e < 3; ++e) {
        align.wait(ctx);
        comm.barrier(ctx);
        acc = fnv1a(acc, ctx.now());
        acc = fnv1a(acc, comm.reduce(ctx, contrib(me, e)));
        acc = fnv1a(acc, comm.allreduce(ctx, contrib(me, e)));
        acc = fnv1a(acc, comm.broadcast(ctx, 0xB0 + e + me, 0));
        acc = fnv1a(acc, ctx.now());
      }
    });
  }
  m.run_started();
  std::uint64_t r = 0;
  for (std::uint64_t v : *mix) r = fnv1a(r, v);
  return digest(m, r);
}

struct ShardVariant {
  const char* name;
  CollectiveConfig cc;
};

const ShardVariant kShardVariants[] = {
    {"msg-proc", {CollMech::kMsg, Combining::kProc, 4}},
    {"msg-cmmu", {CollMech::kMsg, Combining::kCmmu, 4}},
    {"shm", {CollMech::kShm, Combining::kProc, 2}},
    {"hybrid-cmmu", {CollMech::kHybrid, Combining::kCmmu, 2, 4}},
};

MachineConfig shard_cfg(std::uint32_t shards) {
  MachineConfig c = cfg(16);
  c.shards = shards;
  return c;
}

TEST(CollectiveShards, DigestEqualAcrossShardCounts) {
  for (const ShardVariant& v : kShardVariants) {
    const std::uint64_t k1 = wl_collectives(shard_cfg(1), v.cc);
    const std::uint64_t k2 = wl_collectives(shard_cfg(2), v.cc);
    const std::uint64_t k4 = wl_collectives(shard_cfg(4), v.cc);
    EXPECT_EQ(k1, k2) << v.name << ": shards=1 vs shards=2";
    EXPECT_EQ(k1, k4) << v.name << ": shards=1 vs shards=4";
  }
}

TEST(CollectiveShards, DigestEqualUnderFaultInjection) {
  for (const ShardVariant& v : kShardVariants) {
    std::uint64_t d[3];
    const std::uint32_t ks[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      MachineConfig c = shard_cfg(ks[i]);
      add_faults(c);
      d[i] = wl_collectives(c, v.cc);
    }
    EXPECT_EQ(d[0], d[1]) << v.name << " (faults): shards=1 vs shards=2";
    EXPECT_EQ(d[0], d[2]) << v.name << " (faults): shards=1 vs shards=4";
  }
}

TEST(CollectiveShards, DigestEqualWithCheckerArmed) {
  for (const ShardVariant& v : kShardVariants) {
    std::uint64_t d[3];
    const std::uint32_t ks[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      MachineConfig c = shard_cfg(ks[i]);
      c.check.enabled = true;
      d[i] = wl_collectives(c, v.cc);
    }
    EXPECT_EQ(d[0], d[1]) << v.name << " (check): shards=1 vs shards=2";
    EXPECT_EQ(d[0], d[2]) << v.name << " (check): shards=1 vs shards=4";
  }
}

}  // namespace
}  // namespace alewife
