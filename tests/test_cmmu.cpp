// Unit tests for the CMMU message interface: descriptors, operand window,
// storeback scatter (including the "infinity" field), DMA coherence with the
// local cache, handler-side sends, interrupt masking, and error paths.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "runtime/msg_types.hpp"

namespace alewife {
namespace {

MachineConfig cfg4() {
  MachineConfig c;
  c.nodes = 4;
  c.max_cycles = 50'000'000;
  return c;
}

RuntimeOptions quiet() {
  RuntimeOptions o;
  o.stealing = false;
  return o;
}

TEST(Descriptor, WordAccounting) {
  MsgDescriptor d;
  d.dst = 1;
  EXPECT_EQ(d.words(), 1u);  // header only
  d.operands = {1, 2, 3};
  EXPECT_EQ(d.words(), 4u);
  d.regions.push_back({0, 64});
  d.regions.push_back({64, 32});
  EXPECT_EQ(d.words(), 8u);  // +2 per address-length pair
  EXPECT_EQ(d.payload_bytes(), 96u);
}

TEST(Cmmu, RejectsOversizedDescriptor) {
  Machine m(cfg4(), quiet());
  m.run([](Context& ctx) -> std::uint64_t {
    MsgDescriptor d;
    d.dst = 1;
    d.type = kMsgUserBase;
    d.operands.resize(16);  // + header = 17 words
    EXPECT_THROW(ctx.send(d), std::invalid_argument);
    return 0;
  });
}

TEST(Cmmu, RejectsRemoteGatherRegion) {
  Machine m(cfg4(), quiet());
  m.run([](Context& ctx) -> std::uint64_t {
    const GAddr remote = ctx.shmalloc(2, 64);
    MsgDescriptor d;
    d.dst = 1;
    d.type = kMsgUserBase;
    d.regions.push_back({remote, 64});
    EXPECT_THROW(ctx.send(d), std::invalid_argument);
    return 0;
  });
}

TEST(Cmmu, RejectsMissingDestination) {
  Machine m(cfg4(), quiet());
  m.run([](Context& ctx) -> std::uint64_t {
    MsgDescriptor d;
    d.type = kMsgUserBase;
    EXPECT_THROW(ctx.send(d), std::invalid_argument);
    return 0;
  });
}

TEST(Cmmu, UnhandledTypeThrows) {
  Machine m(cfg4(), quiet());
  EXPECT_THROW(m.run([](Context& ctx) -> std::uint64_t {
                 MsgDescriptor d;
                 d.dst = 1;
                 d.type = kMsgUserBase + 55;  // nobody registered this
                 ctx.send(d);
                 ctx.compute(10'000);
                 return 0;
               }),
               std::logic_error);
}

TEST(Cmmu, OperandsArriveInOrder) {
  Machine m(cfg4(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    auto seen = std::make_shared<std::vector<std::uint64_t>>();
    m.node(2).cmmu().set_handler(
        kMsgUserBase, [seen](HandlerCtx& hc, MsgView& v) {
          for (std::size_t i = 0; i < v.operand_count(); ++i) {
            seen->push_back(v.operand(hc, i));
          }
        });
    MsgDescriptor d;
    d.dst = 2;
    d.type = kMsgUserBase;
    d.operands = {11, 22, 33, 44};
    ctx.send(d);
    while (seen->empty()) ctx.compute(16);
    EXPECT_EQ(*seen, (std::vector<std::uint64_t>{11, 22, 33, 44}));
    return 0;
  });
}

TEST(Cmmu, WindowReadsChargeCycles) {
  Machine m(cfg4(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    auto cost = std::make_shared<Cycles>(0);
    m.node(1).cmmu().set_handler(
        kMsgUserBase, [cost](HandlerCtx& hc, MsgView& v) {
          const Cycles t0 = hc.now();
          for (std::size_t i = 0; i < v.operand_count(); ++i) {
            v.operand(hc, i);
          }
          *cost = hc.now() - t0;
        });
    MsgDescriptor d;
    d.dst = 1;
    d.type = kMsgUserBase;
    d.operands = {1, 2, 3, 4, 5};
    ctx.send(d);
    while (*cost == 0) ctx.compute(16);
    EXPECT_EQ(*cost, 5 * m.config().cost.window_read);
    return 0;
  });
}

TEST(Cmmu, MultiRegionGatherConcatenates) {
  Machine m(cfg4(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    const GAddr a = ctx.shmalloc(0, 64);
    const GAddr b = ctx.shmalloc(0, 64);
    const GAddr dst = ctx.shmalloc(1, 128);
    for (int i = 0; i < 8; ++i) {
      ctx.store(a + i * 8, 100 + i);
      ctx.store(b + i * 8, 200 + i);
    }
    auto done = std::make_shared<bool>(false);
    m.node(1).cmmu().set_handler(kMsgUserBase,
                                 [done, dst](HandlerCtx& hc, MsgView& v) {
                                   EXPECT_EQ(v.payload_bytes(), 128u);
                                   v.storeback(hc, dst);
                                   *done = true;
                                 });
    MsgDescriptor d;
    d.dst = 1;
    d.type = kMsgUserBase;
    d.regions.push_back({a, 64});
    d.regions.push_back({b, 64});
    ctx.send(d);
    while (!*done) ctx.compute(16);
    EXPECT_EQ(ctx.load(dst), 100u);
    EXPECT_EQ(ctx.load(dst + 64), 200u);
    EXPECT_EQ(ctx.load(dst + 120), 207u);
    return 0;
  });
}

TEST(Cmmu, StorebackScattersWithSkip) {
  Machine m(cfg4(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    const GAddr src = ctx.shmalloc(0, 96);
    const GAddr d1 = ctx.shmalloc(1, 32);
    const GAddr d2 = ctx.shmalloc(1, 32);
    for (int i = 0; i < 12; ++i) ctx.store(src + i * 8, 1000 + i);
    auto done = std::make_shared<bool>(false);
    m.node(1).cmmu().set_handler(
        kMsgUserBase, [done, d1, d2](HandlerCtx& hc, MsgView& v) {
          // Store words 0..3 to d1, discard words 4..7, store the rest
          // ("infinity") to d2.
          v.storeback(hc, d1, /*skip=*/0, /*store=*/32);
          EXPECT_EQ(v.remaining_payload(), 64u);
          v.storeback(hc, d2, /*skip=*/32, IncomingMsg::kAll);
          EXPECT_EQ(v.remaining_payload(), 0u);
          *done = true;
        });
    MsgDescriptor d;
    d.dst = 1;
    d.type = kMsgUserBase;
    d.regions.push_back({src, 96});
    ctx.send(d);
    while (!*done) ctx.compute(16);
    EXPECT_EQ(ctx.load(d1), 1000u);
    EXPECT_EQ(ctx.load(d1 + 24), 1003u);
    EXPECT_EQ(ctx.load(d2), 1008u);  // words 4..7 discarded
    EXPECT_EQ(ctx.load(d2 + 24), 1011u);
    return 0;
  });
}

TEST(Cmmu, DmaSnapshotsSourceAtLaunch) {
  // The payload is gathered at launch; later stores to the source must not
  // affect the in-flight message.
  Machine m(cfg4(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    const GAddr src = ctx.shmalloc(0, 16);
    const GAddr dst = ctx.shmalloc(3, 16);
    ctx.store(src, 7777);
    auto done = std::make_shared<bool>(false);
    m.node(3).cmmu().set_handler(kMsgUserBase,
                                 [done, dst](HandlerCtx& hc, MsgView& v) {
                                   v.storeback(hc, dst);
                                   *done = true;
                                 });
    MsgDescriptor d;
    d.dst = 3;
    d.type = kMsgUserBase;
    d.regions.push_back({src, 16});
    ctx.send(d);
    ctx.store(src, 8888);  // overwrite immediately after launch
    while (!*done) ctx.compute(16);
    EXPECT_EQ(ctx.load(dst), 7777u);
    return 0;
  });
}

TEST(Cmmu, DmaFlushesDirtySourceLines) {
  Machine m(cfg4(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    const GAddr src = ctx.shmalloc(0, 64);
    for (int i = 0; i < 8; ++i) ctx.store(src + i * 8, i);  // dirty in cache
    EXPECT_EQ(m.memory().cache(0).peek(src), LineState::kModified);
    m.node(0).cmmu().set_handler(kMsgUserBase, [](HandlerCtx&, MsgView&) {});
    MsgDescriptor d;
    d.dst = 0;  // loopback is fine; we care about the source flush
    d.type = kMsgUserBase;
    d.regions.push_back({src, 64});
    ctx.send(d);
    // Source-coherent transfer: the dirty lines were flushed (now shared).
    EXPECT_EQ(m.memory().cache(0).peek(src), LineState::kShared);
    ctx.compute(1000);
    return 0;
  });
}

TEST(Cmmu, MaskDefersHandlers) {
  Machine m(cfg4(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    auto hits = std::make_shared<int>(0);
    m.node(0).cmmu().set_handler(kMsgUserBase + 1,
                                 [hits](HandlerCtx&, MsgView&) { ++*hits; });
    // Node 1 sends us a message; we are masked while it arrives.
    m.node(1).cmmu().send_raw(
        [] {
          MsgDescriptor d;
          d.dst = 0;
          d.type = kMsgUserBase + 1;
          return d;
        }(),
        m.sim().now());
    ctx.mask_interrupts();
    ctx.compute(2000);  // long enough for delivery
    EXPECT_EQ(*hits, 0);  // deferred
    ctx.unmask_interrupts();
    EXPECT_EQ(*hits, 1);  // ran at unmask
    return 0;
  });
}

TEST(Cmmu, SelfSendLoopsBack) {
  Machine m(cfg4(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    auto got = std::make_shared<std::uint64_t>(0);
    m.node(0).cmmu().set_handler(
        kMsgUserBase + 2,
        [got](HandlerCtx& hc, MsgView& v) { *got = v.operand(hc, 0); });
    MsgDescriptor d;
    d.dst = 0;
    d.type = kMsgUserBase + 2;
    d.operands = {99};
    ctx.send(d);
    while (*got == 0) ctx.compute(8);
    EXPECT_EQ(*got, 99u);
    return 0;
  });
}

TEST(Cmmu, HandlerReplyReachesSender) {
  Machine m(cfg4(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    auto reply = std::make_shared<std::uint64_t>(0);
    m.node(0).cmmu().set_handler(
        kMsgUserBase + 4,
        [reply](HandlerCtx& hc, MsgView& v) { *reply = v.operand(hc, 0); });
    m.node(2).cmmu().set_handler(
        kMsgUserBase + 3, [&m](HandlerCtx& hc, MsgView& v) {
          const std::uint64_t x = v.operand(hc, 0);
          MsgDescriptor r;
          r.dst = v.src();
          r.type = kMsgUserBase + 4;
          r.operands = {x * 3};
          m.node(2).cmmu().send_from_handler(hc, r);
        });
    MsgDescriptor d;
    d.dst = 2;
    d.type = kMsgUserBase + 3;
    d.operands = {14};
    ctx.send(d);
    while (*reply == 0) ctx.compute(16);
    EXPECT_EQ(*reply, 42u);
    return 0;
  });
}

TEST(Cmmu, SendIsNonBlocking) {
  // The sender retires the launch and continues; a 4 KB DMA transfer does
  // not stall it.
  Machine m(cfg4(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    const GAddr src = ctx.shmalloc(0, 4096);
    const GAddr dst = ctx.shmalloc(1, 4096);
    m.node(1).cmmu().set_handler(kMsgUserBase,
                                 [dst](HandlerCtx& hc, MsgView& v) {
                                   v.storeback(hc, dst);
                                 });
    MsgDescriptor d;
    d.dst = 1;
    d.type = kMsgUserBase;
    d.regions.push_back({src, 4096});
    const Cycles t0 = ctx.now();
    ctx.send(d);
    const Cycles send_cost = ctx.now() - t0;
    EXPECT_LT(send_cost, 30u);  // describe + launch only
    ctx.compute(20'000);        // let the transfer drain
    return 0;
  });
}

TEST(Cmmu, MessagesCounted) {
  Machine m(cfg4(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    m.node(1).cmmu().set_handler(kMsgUserBase, [](HandlerCtx&, MsgView&) {});
    for (int i = 0; i < 5; ++i) {
      MsgDescriptor d;
      d.dst = 1;
      d.type = kMsgUserBase;
      ctx.send(d);
    }
    ctx.compute(5000);
    return 0;
  });
  EXPECT_EQ(m.stats().get("cmmu.messages_sent"), 5u);
  EXPECT_EQ(m.stats().get("cmmu.messages_received"), 5u);
  EXPECT_EQ(m.stats().get("net.user_packets"), 5u);
}

}  // namespace
}  // namespace alewife
