// Tests for the trace subsystem: ring-buffer semantics, category gating,
// lazy formatting, integration with the network/CMMU emit points, and the
// guarantee that tracing never perturbs simulated timing.
#include <gtest/gtest.h>

#include <sstream>

#include "core/machine.hpp"
#include "runtime/msg_types.hpp"
#include "sim/trace.hpp"

namespace alewife {
namespace {

TEST(Trace, DisabledCategoriesRecordNothing) {
  Trace t;
  t.emit(TraceCat::kNet, 10, 0, "dropped");
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_emitted(), 0u);
}

TEST(Trace, EnabledCategoriesRecord) {
  Trace t;
  t.enable(TraceCat::kNet);
  t.emit(TraceCat::kNet, 10, 3, "hello");
  t.emit(TraceCat::kMem, 11, 3, "still disabled");
  ASSERT_EQ(t.size(), 1u);
  const auto evs = t.events();
  EXPECT_EQ(evs[0].time, 10u);
  EXPECT_EQ(evs[0].node, 3u);
  EXPECT_EQ(evs[0].text, "hello");
}

TEST(Trace, LazyFormatterOnlyRunsWhenEnabled) {
  Trace t;
  int calls = 0;
  const auto fmt = [&calls] {
    ++calls;
    return std::string("x");
  };
  t.emit(TraceCat::kApp, 0, 0, fmt);
  EXPECT_EQ(calls, 0);
  t.enable(TraceCat::kApp);
  t.emit(TraceCat::kApp, 0, 0, fmt);
  EXPECT_EQ(calls, 1);
}

TEST(Trace, RingKeepsNewest) {
  Trace t(4);
  t.enable_all();
  for (int i = 0; i < 10; ++i) {
    t.emit(TraceCat::kApp, i, 0, std::to_string(i));
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_emitted(), 10u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs.front().text, "6");  // oldest surviving
  EXPECT_EQ(evs.back().text, "9");   // newest
}

TEST(Trace, DumpFormatsLines) {
  Trace t;
  t.enable(TraceCat::kMsg);
  t.emit(TraceCat::kMsg, 42, 7, "launch");
  std::ostringstream os;
  t.dump(os);
  EXPECT_EQ(os.str(), "42 msg n7 launch\n");
}

TEST(Trace, ClearResets) {
  Trace t;
  t.enable_all();
  t.emit(TraceCat::kApp, 1, 0, "a");
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_emitted(), 0u);
}

TEST(Trace, CategoryNames) {
  EXPECT_STREQ(trace_cat_name(TraceCat::kNet), "net");
  EXPECT_STREQ(trace_cat_name(TraceCat::kMem), "mem");
  EXPECT_STREQ(trace_cat_name(TraceCat::kMsg), "msg");
  EXPECT_STREQ(trace_cat_name(TraceCat::kSched), "sch");
  EXPECT_STREQ(trace_cat_name(TraceCat::kApp), "app");
}

// ---------------------------------------------------------------------------
// Integration with the machine's emit points
// ---------------------------------------------------------------------------

MachineConfig cfg4() {
  MachineConfig c;
  c.nodes = 4;
  c.max_cycles = 50'000'000;
  return c;
}

RuntimeOptions quiet() {
  RuntimeOptions o;
  o.stealing = false;
  return o;
}

TEST(TraceIntegration, MessagesProduceLaunchAndRecvEvents) {
  Machine m(cfg4(), quiet());
  m.trace().enable(TraceCat::kMsg);
  m.run([&m](Context& ctx) -> std::uint64_t {
    m.node(2).cmmu().set_handler(kMsgUserBase, [](HandlerCtx&, MsgView&) {});
    MsgDescriptor d;
    d.dst = 2;
    d.type = kMsgUserBase;
    ctx.send(d);
    ctx.compute(2000);
    return 0;
  });
  int launches = 0, recvs = 0;
  for (const TraceEvent& ev : m.trace().events()) {
    if (ev.text.rfind("launch", 0) == 0) ++launches;
    if (ev.text.rfind("recv", 0) == 0) ++recvs;
  }
  EXPECT_GE(launches, 1);
  EXPECT_GE(recvs, 1);
}

TEST(TraceIntegration, NetEventsCarryDeliveryTimes) {
  Machine m(cfg4(), quiet());
  m.trace().enable(TraceCat::kNet);
  m.run([](Context& ctx) -> std::uint64_t {
    const GAddr a = ctx.shmalloc(3, 64);
    ctx.load(a);  // one remote transaction = two packets
    return 0;
  });
  int net_events = 0;
  for (const TraceEvent& ev : m.trace().events()) {
    EXPECT_EQ(ev.cat, TraceCat::kNet);
    EXPECT_NE(ev.text.find("deliver@"), std::string::npos);
    ++net_events;
  }
  EXPECT_GE(net_events, 2);
}

TEST(TraceIntegration, TracingDoesNotChangeTiming) {
  Cycles with = 0, without = 0;
  for (int traced = 0; traced < 2; ++traced) {
    Machine m(cfg4(), quiet());
    if (traced) m.trace().enable_all();
    auto dur = std::make_shared<Cycles>(0);
    m.run([&](Context& ctx) -> std::uint64_t {
      const GAddr a = ctx.shmalloc(2, 256);
      const Cycles t0 = ctx.now();
      for (int i = 0; i < 32; ++i) ctx.store(a + (i % 32) * 8, i);
      *dur = ctx.now() - t0;
      return 0;
    });
    (traced ? with : without) = *dur;
  }
  EXPECT_EQ(with, without);
}

}  // namespace
}  // namespace alewife
