// Batch orchestration tests (docs: EXPERIMENTS.md, "alewife_batch").
//
// Two halves:
//   1. Snapshot-forked warm starts: a MachineImage captured after a warmup
//      phase and restored into a fresh machine must continue bit-identically
//      to the machine that ran the warmup itself. Proven by digest equality
//      (machine_digest: final time, event count, duration, every counter)
//      across three workloads — a task-parallel app, a fault-injected
//      message barrier (reliable layer + watchdog armed), and a
//      checker-armed shared-memory scan.
//   2. Batch descriptors: parse/reject, grid expansion, merged-document
//      determinism (parallel == serial byte-identical), and the runner's
//      cold-start fallback for points machine images cannot serve.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/accum.hpp"
#include "apps/grain.hpp"
#include "batch/descriptor.hpp"
#include "batch/runner.hpp"
#include "core/machine.hpp"
#include "core/machine_image.hpp"
#include "runtime/barrier.hpp"
#include "sim/json.hpp"
#include "sim/snapshot.hpp"

namespace alewife {
namespace {

// ---------------------------------------------------------------------------
// Warm-fork workloads: each defines a warmup phase and a measurement phase.
// The cold reference runs both on one machine; the forked run captures an
// image after warmup and restores it into a fresh machine before measuring.
// ---------------------------------------------------------------------------

struct Workload {
  std::string name;
  MachineConfig cfg;
  RuntimeOptions opt;
  std::function<void(Machine&)> warmup;
  std::function<Cycles(Machine&)> measure;
};

Workload grain_workload() {
  Workload w;
  w.name = "grain";
  w.cfg.nodes = 16;
  w.cfg.max_cycles = 0;
  w.opt.mode = SchedMode::kHybrid;
  w.opt.stealing = true;
  w.warmup = [](Machine& m) {
    m.run([](Context& ctx) -> std::uint64_t {
      return apps::grain_parallel(ctx, /*depth=*/6, /*delay=*/40);
    });
  };
  w.measure = [](Machine& m) -> Cycles {
    auto dur = std::make_shared<Cycles>(0);
    m.run([dur](Context& ctx) -> std::uint64_t {
      const Cycles t0 = ctx.now();
      const std::uint64_t n = apps::grain_parallel(ctx, /*depth=*/8,
                                                   /*delay=*/40);
      *dur = ctx.now() - t0;
      return n;
    });
    return *dur;
  };
  return w;
}

// Message-mechanism combining barrier under packet loss: exercises the
// reliable-delivery layer (sequence numbers, retransmit state), the fault
// plan's rng stream, and the auto-armed watchdog across the fork.
Workload faulty_barrier_workload() {
  Workload w;
  w.name = "barrier-faulty";
  w.cfg.nodes = 8;
  w.cfg.max_cycles = 0;
  w.cfg.fault.drop_rate = 0.02;
  w.cfg.fault.dup_rate = 0.01;
  w.opt.mode = SchedMode::kHybrid;
  w.opt.stealing = false;
  auto episodes = [](Machine& m, int count) {
    const std::uint32_t nodes = m.nodes();
    CombiningBarrier bar(m.runtime(), CombiningBarrier::Mech::kMsg, 4);
    for (NodeId n = 0; n < nodes; ++n) {
      m.start_thread(n, [&bar, count](Context& ctx) {
        for (int e = 0; e < count; ++e) bar.wait(ctx);
      });
    }
    m.run_started();
  };
  w.warmup = [episodes](Machine& m) { episodes(m, 2); };
  w.measure = [episodes](Machine& m) -> Cycles {
    const Cycles t0 = m.now();
    episodes(m, 3);
    return m.now() - t0;
  };
  return w;
}

// Checker-armed shared-memory scan: the golden shadow captured with the
// image must keep validating reads made after the fork.
Workload checker_accum_workload() {
  Workload w;
  w.name = "accum-checker";
  w.cfg.nodes = 8;
  w.cfg.max_cycles = 0;
  w.cfg.check.enabled = true;
  w.opt.mode = SchedMode::kHybrid;
  w.opt.stealing = false;
  auto scan = [](Machine& m, std::uint32_t block) {
    m.run([&m, block](Context& ctx) -> std::uint64_t {
      const GAddr arr = ctx.shmalloc(1, block);
      for (std::uint32_t i = 0; i < block; i += 8) {
        m.memory().store().write_uint(arr + i, 8, i / 8);
      }
      apps::accum_shm(ctx, arr, block);
      return 0;
    });
  };
  w.warmup = [scan](Machine& m) { scan(m, 512); };
  w.measure = [scan](Machine& m) -> Cycles {
    const Cycles t0 = m.now();
    scan(m, 1024);
    return m.now() - t0;
  };
  return w;
}

struct RunResult {
  std::uint64_t digest;
  Cycles final_now;
  std::uint64_t events;
};

RunResult run_cold(const Workload& w) {
  Machine m(w.cfg, w.opt);
  w.warmup(m);
  const Cycles dur = w.measure(m);
  return RunResult{machine_digest(m, dur), m.now(), m.sim().events_executed()};
}

RunResult run_forked(const Workload& w) {
  MachineImage im = [&] {
    Machine warm(w.cfg, w.opt);
    w.warmup(warm);
    return capture_machine_image(warm, w.name);
  }();  // the warmup machine is destroyed before the fork runs
  Machine forked(w.cfg, w.opt);
  restore_machine_image(forked, im);
  const Cycles dur = w.measure(forked);
  return RunResult{machine_digest(forked, dur), forked.now(),
                   forked.sim().events_executed()};
}

class WarmFork : public ::testing::Test {};

TEST(WarmFork, GrainForkedDigestMatchesCold) {
  const Workload w = grain_workload();
  const RunResult cold = run_cold(w);
  const RunResult fork = run_forked(w);
  EXPECT_EQ(cold.final_now, fork.final_now);
  EXPECT_EQ(cold.events, fork.events);
  EXPECT_EQ(cold.digest, fork.digest);
}

TEST(WarmFork, FaultyBarrierForkedDigestMatchesCold) {
  const Workload w = faulty_barrier_workload();
  const RunResult cold = run_cold(w);
  const RunResult fork = run_forked(w);
  EXPECT_EQ(cold.final_now, fork.final_now);
  EXPECT_EQ(cold.events, fork.events);
  EXPECT_EQ(cold.digest, fork.digest);
}

TEST(WarmFork, CheckerArmedForkedDigestMatchesCold) {
  const Workload w = checker_accum_workload();
  const RunResult cold = run_cold(w);
  const RunResult fork = run_forked(w);
  EXPECT_EQ(cold.final_now, fork.final_now);
  EXPECT_EQ(cold.events, fork.events);
  EXPECT_EQ(cold.digest, fork.digest);
}

// One image, many forks: the batch runner forks every measurement point of a
// machine configuration from a single warmup image, so restoring must not
// consume or mutate it.
TEST(WarmFork, ImageIsReusableAcrossForks) {
  const Workload w = grain_workload();
  Machine warm(w.cfg, w.opt);
  w.warmup(warm);
  const MachineImage im = capture_machine_image(warm, w.name);
  RunResult first{}, second{};
  {
    Machine f(w.cfg, w.opt);
    restore_machine_image(f, im);
    const Cycles dur = w.measure(f);
    first = RunResult{machine_digest(f, dur), f.now(),
                      f.sim().events_executed()};
  }
  {
    Machine f(w.cfg, w.opt);
    restore_machine_image(f, im);
    const Cycles dur = w.measure(f);
    second = RunResult{machine_digest(f, dur), f.now(),
                       f.sim().events_executed()};
  }
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.final_now, second.final_now);
  EXPECT_EQ(first.events, second.events);
}

// ---------------------------------------------------------------------------
// Capture/restore legality
// ---------------------------------------------------------------------------

TEST(MachineImage, CaptureOnShardedEngineThrowsUnsupported) {
  MachineConfig cfg;
  cfg.nodes = 8;
  cfg.shards = 2;
  RuntimeOptions opt;
  opt.mode = SchedMode::kHybrid;
  Machine m(cfg, opt);
  m.run([](Context&) -> std::uint64_t { return 0; });
  EXPECT_THROW(capture_machine_image(m, "sharded"), SnapshotUnsupported);
}

TEST(MachineImage, CaptureWithNodeDownPlanThrowsUnsupported) {
  MachineConfig cfg;
  cfg.nodes = 8;
  cfg.fault.node_downs.push_back(NodeDown{/*node=*/3, /*at=*/1'000'000, 0});
  Machine m(cfg, RuntimeOptions{});
  m.run([](Context&) -> std::uint64_t { return 0; });
  EXPECT_THROW(capture_machine_image(m, "node-down"), SnapshotUnsupported);
}

TEST(MachineImage, RestoreRejectsSeedMismatch) {
  const Workload w = grain_workload();
  Machine warm(w.cfg, w.opt);
  w.warmup(warm);
  const MachineImage im = capture_machine_image(warm, w.name);
  MachineConfig other = w.cfg;
  other.rng_seed ^= 1;
  Machine f(other, w.opt);
  EXPECT_THROW(restore_machine_image(f, im), SnapshotError);
}

TEST(MachineImage, RestoreRejectsAlreadyRunMachine) {
  const Workload w = grain_workload();
  Machine warm(w.cfg, w.opt);
  w.warmup(warm);
  const MachineImage im = capture_machine_image(warm, w.name);
  Machine f(w.cfg, w.opt);
  f.run([](Context&) -> std::uint64_t { return 0; });
  EXPECT_THROW(restore_machine_image(f, im), std::logic_error);
}

TEST(MachineImage, RestoreRejectsCheckerParityMismatch) {
  const Workload w = grain_workload();
  Machine warm(w.cfg, w.opt);
  w.warmup(warm);
  const MachineImage im = capture_machine_image(warm, w.name);
  MachineConfig armed = w.cfg;
  armed.check.enabled = true;
  Machine f(armed, w.opt);
  EXPECT_THROW(restore_machine_image(f, im), SnapshotError);
}

// ---------------------------------------------------------------------------
// Batch descriptors: parse/reject and grid expansion
// ---------------------------------------------------------------------------

batch::BatchDescriptor parse(const std::string& text) {
  return batch::parse_descriptor(json::parse(text), ".");
}

// A small but representative grid: one table (2 axis values x 2 runs, one
// warm-forked) plus one warm-forked point and one sharded point the runner
// must serve cold. Machines are 8 nodes so the whole thing runs in tens of
// milliseconds.
const char* kGridDescriptor = R"({
  "schema": "alewife-batch-descriptor",
  "version": 1,
  "name": "grid",
  "tables": [
    {
      "name": "bar",
      "axis": {"name": "arity", "values": [2, 4]},
      "config": {"nodes": 8},
      "warmup": {"measure": "barrier", "mech": "msg", "arity": 2,
                 "episodes": 1},
      "runs": {
        "bshm": {"measure": "barrier", "mech": "shm", "arity": "$axis",
                 "episodes": 2},
        "bmsg": {"measure": "barrier", "mech": "msg", "arity": "$axis",
                 "episodes": 2}
      },
      "cols": [
        {"name": "arity", "axis": true},
        {"name": "bar shm", "run": "bshm", "value": "cycles"},
        {"name": "bar msg", "run": "bmsg", "value": "cycles"}
      ]
    }
  ],
  "points": [
    {
      "name": "warm-point",
      "config": {"nodes": 8},
      "warmup": {"measure": "barrier", "mech": "msg", "arity": 2,
                 "episodes": 1},
      "run": {"measure": "barrier", "mech": "msg", "arity": 2, "episodes": 2},
      "expect": {"exit": 0}
    },
    {
      "name": "sharded-point",
      "config": {"nodes": 8, "shards": 2},
      "warmup": {"measure": "barrier", "mech": "msg", "arity": 2,
                 "episodes": 1},
      "run": {"measure": "barrier", "mech": "msg", "arity": 2, "episodes": 2},
      "expect": {"exit": 0}
    }
  ]
})";

TEST(Descriptor, ParsesGrid) {
  const batch::BatchDescriptor d = parse(kGridDescriptor);
  EXPECT_EQ(d.name, "grid");
  ASSERT_EQ(d.tables.size(), 1u);
  const batch::TableSpec& t = d.tables[0];
  EXPECT_EQ(t.name, "bar");
  EXPECT_EQ(t.sweep, "bar");  // defaults to the table name
  ASSERT_EQ(t.axis_values.size(), 2u);
  EXPECT_EQ(t.axis_values[0], 2.0);
  EXPECT_EQ(t.axis_values[1], 4.0);
  EXPECT_EQ(t.runs.size(), 2u);
  EXPECT_EQ(t.cols.size(), 3u);
  ASSERT_EQ(d.points.size(), 2u);
  EXPECT_EQ(d.points[0].name, "warm-point");
  EXPECT_TRUE(d.points[0].warmup.has_value());
}

TEST(Descriptor, RejectsUnknownKeysEverywhere) {
  // Top level, table, config, run, col, point, expect: any stray key is a
  // typo that would otherwise silently change the experiment.
  const std::vector<std::string> bad = {
      R"({"schema": "alewife-batch-descriptor", "version": 1, "name": "x",
          "tablez": []})",
      R"({"schema": "alewife-batch-descriptor", "version": 1, "name": "x",
          "tables": [{"name": "t", "axis": {"name": "a", "values": [1]},
                      "seriial_rows": true,
                      "runs": {"r": {"measure": "barrier"}},
                      "cols": [{"name": "a", "axis": true}]}]})",
      R"({"schema": "alewife-batch-descriptor", "version": 1, "name": "x",
          "tables": [{"name": "t", "axis": {"name": "a", "values": [1]},
                      "config": {"nodez": 8},
                      "runs": {"r": {"measure": "barrier"}},
                      "cols": [{"name": "a", "axis": true}]}]})",
      R"({"schema": "alewife-batch-descriptor", "version": 1, "name": "x",
          "tables": [{"name": "t", "axis": {"name": "a", "values": [1]},
                      "runs": {"r": {"measure": "barrier"}},
                      "cols": [{"name": "a", "axis": true,
                                "precison": 2}]}]})",
      R"({"schema": "alewife-batch-descriptor", "version": 1, "name": "x",
          "points": [{"name": "p", "config": {"nodes": 8},
                      "run": {"measure": "barrier"},
                      "expcet": {"exit": 0}}]})",
      R"({"schema": "alewife-batch-descriptor", "version": 1, "name": "x",
          "points": [{"name": "p", "config": {"nodes": 8},
                      "run": {"measure": "barrier"},
                      "expect": {"exit": 0, "nonzro": []}}]})",
  };
  for (const auto& text : bad) {
    EXPECT_THROW(parse(text), batch::DescriptorError) << text;
  }
}

TEST(Descriptor, RejectsWrongSchemaOrVersion) {
  EXPECT_THROW(parse(R"({"schema": "alewife-sweep", "version": 1,
                         "name": "x", "points": []})"),
               batch::DescriptorError);
  EXPECT_THROW(parse(R"({"schema": "alewife-batch-descriptor", "version": 2,
                         "name": "x", "points": []})"),
               batch::DescriptorError);
  // An empty descriptor declares no work — also an error.
  EXPECT_THROW(parse(R"({"schema": "alewife-batch-descriptor", "version": 1,
                         "name": "x"})"),
               batch::DescriptorError);
}

class BatchRunner : public ::testing::Test {
 protected:
  static batch::RunnerOptions quiet_opts(unsigned threads) {
    batch::RunnerOptions o;
    o.threads = threads;
    o.quiet = true;
    return o;
  }
};

TEST_F(BatchRunner, ExpandsGridAndChecksExpectations) {
  const batch::BatchDescriptor d = parse(kGridDescriptor);
  const batch::BatchResult r = batch::run_batch(d, quiet_opts(1));
  ASSERT_EQ(r.tables.size(), 1u);
  EXPECT_EQ(r.tables[0].rows.size(), 2u);  // one row per axis value
  for (const auto& row : r.tables[0].rows) {
    ASSERT_EQ(row.size(), 3u);  // one cell per column
    for (const auto& cell : row) EXPECT_FALSE(cell.empty());
  }
  ASSERT_EQ(r.points.size(), 2u);
  EXPECT_EQ(r.points[0].exit_code, 0);
  EXPECT_TRUE(r.points[0].warm_forked);
  EXPECT_NE(r.points[0].digest, 0u);
  // The sharded point cannot be served from a machine image: the runner
  // falls back to warming up and measuring on one cold machine.
  EXPECT_EQ(r.points[1].exit_code, 0);
  EXPECT_FALSE(r.points[1].warm_forked);
  EXPECT_TRUE(r.ok()) << r.failures().front();
}

TEST_F(BatchRunner, MergedDocumentIsDeterministicAcrossThreadCounts) {
  const batch::BatchDescriptor d = parse(kGridDescriptor);
  const batch::BatchResult serial = batch::run_batch(d, quiet_opts(1));
  const batch::BatchResult parallel = batch::run_batch(d, quiet_opts(4));
  EXPECT_TRUE(batch::results_match(serial, parallel));
  std::ostringstream a, b;
  batch::write_batch_json(a, serial);
  batch::write_batch_json(b, parallel);
  EXPECT_EQ(a.str(), b.str());  // byte-identical merged documents
}

// The acceptance proof for snapshot-forked warm starts at the runner level:
// the same descriptor run --cold (warmup inlined on every machine) must
// produce bit-identical digests, cycles and counters for every point.
TEST_F(BatchRunner, WarmForkedPointsMatchColdStarts) {
  const batch::BatchDescriptor d = parse(kGridDescriptor);
  const batch::BatchResult warm = batch::run_batch(d, quiet_opts(1));
  batch::RunnerOptions cold_opt = quiet_opts(1);
  cold_opt.cold = true;
  const batch::BatchResult cold = batch::run_batch(d, cold_opt);
  ASSERT_EQ(warm.points.size(), cold.points.size());
  for (std::size_t i = 0; i < warm.points.size(); ++i) {
    const batch::PointResult& w = warm.points[i];
    const batch::PointResult& c = cold.points[i];
    EXPECT_EQ(w.digest, c.digest) << w.name;
    EXPECT_EQ(w.cycles, c.cycles) << w.name;
    EXPECT_EQ(w.events, c.events) << w.name;
    EXPECT_EQ(w.counters, c.counters) << w.name;
    EXPECT_EQ(w.exit_code, c.exit_code) << w.name;
  }
  EXPECT_TRUE(warm.points[0].warm_forked);
  EXPECT_FALSE(cold.points[0].warm_forked);
  // Tables must agree cell for cell too (the table forks each row's runs
  // from one warmup image; --cold re-runs the warmup on every machine).
  // results_match() itself would flag warm vs cold — it also pins the
  // warm_forked provenance bit, which legitimately differs here.
  ASSERT_EQ(warm.tables.size(), cold.tables.size());
  for (std::size_t t = 0; t < warm.tables.size(); ++t) {
    EXPECT_EQ(warm.tables[t].rows, cold.tables[t].rows) << warm.tables[t].name;
  }
}

TEST_F(BatchRunner, ExpectationFailureIsReported) {
  const batch::BatchDescriptor d = parse(R"({
    "schema": "alewife-batch-descriptor", "version": 1, "name": "x",
    "points": [{
      "name": "no-faults-expected-faulty",
      "config": {"nodes": 8},
      "run": {"measure": "barrier", "mech": "msg", "arity": 2,
              "episodes": 1},
      "expect": {"exit": 0, "nonzero": ["fault.drops"]}
    }]
  })");
  const batch::BatchResult r = batch::run_batch(d, quiet_opts(1));
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_EQ(r.points[0].exit_code, 0);  // the run itself succeeded
  EXPECT_FALSE(r.ok());                 // but the expectation failed
  ASSERT_EQ(r.failures().size(), 1u);
  EXPECT_NE(r.failures()[0].find("fault.drops"), std::string::npos);
}

}  // namespace
}  // namespace alewife
