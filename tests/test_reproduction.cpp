// Reproduction guards: the paper's qualitative claims, encoded as tests with
// generous bands so calibration drift that would silently flip a conclusion
// fails CI instead. Each test names the paper section it protects.
#include <gtest/gtest.h>

#include "apps/accum.hpp"
#include "apps/grain.hpp"
#include "apps/jacobi.hpp"
#include "core/machine.hpp"
#include "runtime/barrier.hpp"

namespace alewife {
namespace {

MachineConfig cfg(std::uint32_t nodes) {
  MachineConfig c;
  c.nodes = nodes;
  c.max_cycles = 500'000'000;
  return c;
}

RuntimeOptions quiet() {
  RuntimeOptions o;
  o.stealing = false;
  return o;
}

Cycles barrier_cost(CombiningBarrier::Mech mech, std::uint32_t arity) {
  Machine m(cfg(64), quiet());
  CombiningBarrier bar(m.runtime(), mech, arity);
  auto t0 = std::make_shared<Cycles>(0);
  auto t1 = std::make_shared<Cycles>(0);
  for (NodeId n = 0; n < 64; ++n) {
    m.start_thread(n, [&bar, t0, t1, n](Context& ctx) {
      for (int e = 0; e < 4; ++e) {
        if (n == 0 && e == 1) *t0 = ctx.now();
        bar.wait(ctx);
      }
      if (n == 0) *t1 = ctx.now();
    });
  }
  m.run_started();
  return (*t1 - *t0) / 3;
}

TEST(PaperClaims, S42_BarrierCyclesInPaperBand) {
  const Cycles shm = barrier_cost(CombiningBarrier::Mech::kShm, 2);
  const Cycles msg = barrier_cost(CombiningBarrier::Mech::kMsg, 8);
  // Paper: ~1650 and ~660 cycles; allow a broad band.
  EXPECT_GT(shm, 1100u);
  EXPECT_LT(shm, 2400u);
  EXPECT_GT(msg, 330u);
  EXPECT_LT(msg, 1000u);
  // Claim: msg barrier is a substantial (2-4x) improvement.
  EXPECT_GT(shm, msg * 2);
  EXPECT_LT(shm, msg * 5);
}

TEST(PaperClaims, S43_InvokeDrasticallyCheaperByMessage) {
  Machine m(cfg(64), quiet());
  auto t_invoker_shm = std::make_shared<Cycles>(0);
  auto t_invoker_msg = std::make_shared<Cycles>(0);
  m.run([&](Context& ctx) -> std::uint64_t {
    Cycles t0 = ctx.now();
    FutureId f1 = ctx.invoke_shm(9, [](Context&) -> std::uint64_t { return 1; });
    *t_invoker_shm = ctx.now() - t0;
    ctx.touch(f1);
    t0 = ctx.now();
    FutureId f2 = ctx.invoke_msg(18, [](Context&) -> std::uint64_t { return 1; });
    *t_invoker_msg = ctx.now() - t0;
    ctx.touch(f2);
    return 0;
  });
  // Paper: 353 vs 17 — an order of magnitude or more.
  EXPECT_LT(*t_invoker_msg * 10, *t_invoker_shm);
  EXPECT_LT(*t_invoker_msg, 40u);
}

TEST(PaperClaims, Fig7_MessageCopyWinsAndPrefetchHurts) {
  auto copy_time = [](CopyImpl impl, std::uint32_t bytes) {
    Machine m(cfg(64), quiet());
    auto t = std::make_shared<Cycles>(0);
    m.run([&](Context& ctx) -> std::uint64_t {
      const GAddr src = ctx.shmalloc(0, bytes);
      for (std::uint32_t i = 0; i < bytes; i += 8) ctx.store(src + i, i);
      const GAddr dst = ctx.shmalloc(1, bytes);
      const Cycles t0 = ctx.now();
      m.bulk().copy(ctx, dst, src, bytes, impl);
      *t = ctx.now() - t0;
      return 0;
    });
    return *t;
  };
  const Cycles np256 = copy_time(CopyImpl::kShmLoop, 256);
  const Cycles pf256 = copy_time(CopyImpl::kShmPrefetch, 256);
  const Cycles mp256 = copy_time(CopyImpl::kMsgDma, 256);
  const Cycles np4k = copy_time(CopyImpl::kShmLoop, 4096);
  const Cycles mp4k = copy_time(CopyImpl::kMsgDma, 4096);
  // Claims: msg faster at 256 B (paper 1.5x) and >3x at 4 KB; prefetch
  // slower than the plain loop.
  EXPECT_GT(np256, mp256);
  EXPECT_GT(np4k, mp4k * 3);
  EXPECT_GT(pf256, np256);
  // Peak message rate near the paper's 55.4 MB/s (cycles for 4 KB at 33 MHz).
  EXPECT_GT(mp4k, 1800u);  // < 75 MB/s
  EXPECT_LT(mp4k, 3400u);  // > 40 MB/s
}

TEST(PaperClaims, Fig8_AccumFavorsPrefetchedSharedMemory) {
  auto accum_time = [](bool msg) {
    Machine m(cfg(64), quiet());
    auto t = std::make_shared<Cycles>(0);
    m.run([&](Context& ctx) -> std::uint64_t {
      const GAddr arr = ctx.shmalloc(1, 4096);
      const Cycles t0 = ctx.now();
      if (msg) {
        const GAddr buf = ctx.shmalloc(0, 4096);
        apps::accum_msg(ctx, m.bulk(), arr, buf, 4096);
      } else {
        apps::accum_shm(ctx, arr, 4096);
      }
      *t = ctx.now() - t0;
      return 0;
    });
    return *t;
  };
  const Cycles shm = accum_time(false);
  const Cycles msg = accum_time(true);
  // Paper: msg 1.3x slower at 4 KB (ours ~1.65); assert 1.1x..2.5x.
  EXPECT_GT(msg * 10, shm * 11);
  EXPECT_LT(msg, shm * 5 / 2);
}

TEST(PaperClaims, Fig9_HybridSchedulerWinsAndGapShrinks) {
  auto speedup = [](SchedMode mode, Cycles delay) {
    RuntimeOptions o;
    o.mode = mode;
    Machine m(cfg(16), o);
    auto dur = std::make_shared<Cycles>(0);
    m.run([&](Context& ctx) -> std::uint64_t {
      const Cycles t0 = ctx.now();
      apps::grain_parallel(ctx, 10, delay);
      *dur = ctx.now() - t0;
      return 0;
    });
    return double(apps::grain_sequential_cycles(10, delay)) / double(*dur);
  };
  const double shm_fine = speedup(SchedMode::kShm, 0);
  const double hyb_fine = speedup(SchedMode::kHybrid, 0);
  const double shm_coarse = speedup(SchedMode::kShm, 1000);
  const double hyb_coarse = speedup(SchedMode::kHybrid, 1000);
  EXPECT_GT(hyb_fine, shm_fine * 1.3);      // hybrid clearly wins fine grain
  EXPECT_GT(hyb_coarse, shm_coarse);        // still wins coarse grain
  // The relative advantage shrinks with grain size.
  EXPECT_LT(hyb_coarse / shm_coarse, hyb_fine / shm_fine);
}

TEST(PaperClaims, Fig11_JacobiCrossover) {
  auto cycles_per_iter = [](bool msg, std::uint32_t grid) {
    Machine m(cfg(64), quiet());
    auto setup = std::make_shared<apps::JacobiSetup>(
        apps::jacobi_setup(m, grid));
    apps::jacobi_init(m, *setup, [](std::uint32_t r, std::uint32_t c) {
      return 0.001 * r + 0.002 * c;
    });
    auto bar = std::make_shared<CombiningBarrier>(
        m.runtime(), CombiningBarrier::Mech::kShm, 2u);
    auto worst = std::make_shared<Cycles>(0);
    for (NodeId n = 0; n < 64; ++n) {
      m.start_thread(n, [=, &m](Context& ctx) {
        apps::jacobi_node(ctx, *setup, msg, 2, *bar, m.bulk());
        const Cycles c =
            apps::jacobi_node(ctx, *setup, msg, 6, *bar, m.bulk()) / 6;
        if (c > *worst) *worst = c;
      });
    }
    m.run_started();
    return *worst;
  };
  // Paper: shm slightly better at 32x32, msg slightly better at 128x128,
  // differences small in both cases.
  const Cycles shm32 = cycles_per_iter(false, 32);
  const Cycles msg32 = cycles_per_iter(true, 32);
  const Cycles shm128 = cycles_per_iter(false, 128);
  const Cycles msg128 = cycles_per_iter(true, 128);
  EXPECT_LT(shm32, msg32);
  EXPECT_GT(shm128, msg128);
  EXPECT_LT(msg32, shm32 * 2);    // "slightly"
  EXPECT_GT(msg128 * 2, shm128);  // "slightly"
}

TEST(PaperClaims, RemoteReadLatencyInAlewifeBand) {
  Machine m(cfg(64), quiet());
  auto lat = std::make_shared<Cycles>(0);
  m.run([&](Context& ctx) -> std::uint64_t {
    const GAddr a = ctx.shmalloc(1, 64);
    const Cycles t0 = ctx.now();
    ctx.load(a);
    *lat = ctx.now() - t0;
    return 0;
  });
  // 2-party clean remote read: Alewife-class machines sat around 35-60.
  EXPECT_GT(*lat, 25u);
  EXPECT_LT(*lat, 70u);
}

}  // namespace
}  // namespace alewife
