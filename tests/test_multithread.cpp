// Tests for Sparcle-style block multithreading (switch on remote miss):
// correctness of the switched path, overlap of misses with useful work,
// context pinning around simulated locks, and interaction with the
// schedulers/applications.
#include <gtest/gtest.h>

#include "apps/grain.hpp"
#include "core/machine.hpp"

namespace alewife {
namespace {

MachineConfig cfg(std::uint32_t nodes, bool mt) {
  MachineConfig c;
  c.nodes = nodes;
  c.multithread_on_miss = mt;
  c.max_cycles = 200'000'000;
  return c;
}

RuntimeOptions opts(bool steal) {
  RuntimeOptions o;
  o.stealing = steal;
  return o;
}

TEST(Multithread, SwitchedLoadsReturnCorrectValues) {
  // Two threads on node 0 share the core; their remote loads interleave via
  // context switches and every value must still be right.
  Machine m(cfg(4, true), opts(false));
  const GAddr a = m.shmalloc(2, 512);
  for (int i = 0; i < 64; ++i) {
    m.memory().store().write_uint(a + i * 8, 8, 70 + i);
  }
  auto checked = std::make_shared<int>(0);
  for (int t = 0; t < 2; ++t) {
    m.start_thread(0, [a, t, checked](Context& ctx) {
      for (int i = t; i < 64; i += 2) {
        if (ctx.load(a + i * 8) == 70u + i) ++*checked;
      }
    });
  }
  m.run_started();
  EXPECT_EQ(*checked, 64);
  EXPECT_GT(m.stats().get("proc.context_switches"), 0u);
  m.memory().check_invariants();
}

TEST(Multithread, TwoMissStreamsOverlap) {
  // Two threads on one node, each chasing cold remote lines (to different
  // homes). Without multithreading their misses serialize; with it, one
  // thread's misses hide inside the other's (memory-level parallelism across
  // contexts — Sparcle's whole point).
  auto total_time = [](bool mt) {
    Machine m(cfg(4, mt), opts(false));
    auto done_at = std::make_shared<Cycles>(0);
    std::vector<GAddr> la, lb;
    for (int i = 0; i < 30; ++i) {
      la.push_back(m.shmalloc(2, 16));
      lb.push_back(m.shmalloc(3, 16));
    }
    for (auto lines : {la, lb}) {
      m.start_thread(0, [lines, done_at](Context& ctx) {
        for (GAddr a : lines) {
          ctx.load(a);     // cold remote miss
          ctx.compute(6);  // a little work per element
        }
        *done_at = std::max(*done_at, ctx.now());
      });
    }
    m.run_started();
    return *done_at;
  };
  const Cycles without = total_time(false);
  const Cycles with = total_time(true);
  EXPECT_LT(with, without);
}

TEST(Multithread, LoneThreadStallsInsteadOfSwitching) {
  // With nothing to switch to, the processor stalls exactly as a
  // single-context machine would (Sparcle only switches to a loaded, ready
  // context).
  auto latency = [](bool mt) {
    Machine m(cfg(4, mt), opts(false));
    auto t = std::make_shared<Cycles>(0);
    const GAddr a = m.shmalloc(2, 64);
    m.start_thread(0, [a, t](Context& ctx) {
      const Cycles t0 = ctx.now();
      ctx.load(a);
      *t = ctx.now() - t0;
    });
    m.run_started();
    return *t;
  };
  EXPECT_EQ(latency(true), latency(false));
}

TEST(Multithread, AtomicsRemainAtomic) {
  Machine m(cfg(8, true), opts(false));
  const GAddr ctr = m.shmalloc(5, 64);
  for (NodeId n = 0; n < 8; ++n) {
    m.start_thread(n, [ctr, n](Context& ctx) {
      for (int i = 0; i < 15; ++i) {
        ctx.fetch_add(ctr, 1);
        ctx.compute((n + i) % 20);
      }
    });
  }
  m.run_started();
  EXPECT_EQ(m.memory().store().read_uint(ctr, 8), 120u);
  m.memory().check_invariants();
}

TEST(Multithread, SchedulersStillCorrectUnderSwitching) {
  for (SchedMode mode : {SchedMode::kShm, SchedMode::kHybrid}) {
    MachineConfig c = cfg(8, true);
    RuntimeOptions o;
    o.mode = mode;
    o.stealing = true;
    Machine m(c, o);
    const std::uint64_t r = m.run([](Context& ctx) -> std::uint64_t {
      return apps::grain_parallel(ctx, 8, 100);
    });
    EXPECT_EQ(r, 256u);
    m.memory().check_invariants();
  }
}

TEST(Multithread, PinPreventsSwitching) {
  Machine m(cfg(4, true), opts(false));
  m.run([&m](Context& ctx) -> std::uint64_t {
    const GAddr a = ctx.shmalloc(2, 64);
    const std::uint64_t before = m.stats().get("proc.context_switches");
    {
      ContextPin pin(ctx.proc());
      ctx.load(a);  // remote miss, but pinned: stall instead of switch
    }
    EXPECT_EQ(m.stats().get("proc.context_switches"), before);
    return 0;
  });
}

TEST(Multithread, OffByDefaultChangesNothing) {
  // Two identical runs, one constructed with the flag explicitly false and
  // one with the default config: bit-identical timing.
  Cycles a, b;
  {
    Machine m(cfg(4, false), opts(false));
    m.run([](Context& ctx) -> std::uint64_t {
      const GAddr x = ctx.shmalloc(2, 128);
      for (int i = 0; i < 16; ++i) ctx.store(x + i * 8, i);
      return 0;
    });
    a = m.now();
  }
  {
    MachineConfig c;
    c.nodes = 4;
    Machine m(c, opts(false));
    m.run([](Context& ctx) -> std::uint64_t {
      const GAddr x = ctx.shmalloc(2, 128);
      for (int i = 0; i < 16; ++i) ctx.store(x + i * 8, i);
      return 0;
    });
    b = m.now();
  }
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace alewife
