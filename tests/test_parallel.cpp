// Tests for the structured parallel_for / parallel_reduce layer: coverage
// (every index exactly once), grain respect, speedup under both schedulers,
// nesting, and degenerate ranges.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "runtime/parallel.hpp"

namespace alewife {
namespace {

MachineConfig cfg(std::uint32_t nodes) {
  MachineConfig c;
  c.nodes = nodes;
  c.max_cycles = 500'000'000;
  return c;
}

RuntimeOptions opts(SchedMode m, bool steal = true) {
  RuntimeOptions o;
  o.mode = m;
  o.stealing = steal;
  return o;
}

class ParallelModes : public ::testing::TestWithParam<SchedMode> {};

TEST_P(ParallelModes, EveryIndexExactlyOnce) {
  Machine m(cfg(8), opts(GetParam()));
  constexpr std::uint64_t kN = 500;
  auto hits = std::make_shared<std::vector<int>>(kN, 0);
  m.run([hits](Context& ctx) -> std::uint64_t {
    parallel_for(ctx, 0, kN, 16,
                 [hits](Context& c, std::uint64_t a, std::uint64_t b) {
                   for (std::uint64_t i = a; i < b; ++i) {
                     (*hits)[i]++;
                     c.compute(5);
                   }
                 });
    return 0;
  });
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ((*hits)[i], 1) << "index " << i;
  }
}

TEST_P(ParallelModes, ReduceSumsCorrectly) {
  Machine m(cfg(8), opts(GetParam()));
  const std::uint64_t r = m.run([](Context& ctx) -> std::uint64_t {
    return parallel_reduce(
        ctx, 1, 1001, 25,
        [](Context& c, std::uint64_t a, std::uint64_t b) -> std::uint64_t {
          std::uint64_t s = 0;
          for (std::uint64_t i = a; i < b; ++i) {
            s += i;
            c.compute(2);
          }
          return s;
        });
  });
  EXPECT_EQ(r, 1000u * 1001 / 2);
}

TEST_P(ParallelModes, ChunksRespectGrain) {
  Machine m(cfg(4), opts(GetParam(), false));
  auto max_chunk = std::make_shared<std::uint64_t>(0);
  auto chunks = std::make_shared<int>(0);
  m.run([=](Context& ctx) -> std::uint64_t {
    parallel_for(ctx, 0, 300, 32,
                 [=](Context&, std::uint64_t a, std::uint64_t b) {
                   *max_chunk = std::max(*max_chunk, b - a);
                   ++*chunks;
                 });
    return 0;
  });
  EXPECT_LE(*max_chunk, 32u);
  EXPECT_GE(*chunks, int(300 / 32));
}

INSTANTIATE_TEST_SUITE_P(Modes, ParallelModes,
                         ::testing::Values(SchedMode::kShm,
                                           SchedMode::kHybrid));

TEST(Parallel, EmptyAndTinyRanges) {
  Machine m(cfg(2), opts(SchedMode::kHybrid, false));
  m.run([](Context& ctx) -> std::uint64_t {
    int calls = 0;
    parallel_for(ctx, 5, 5, 10,
                 [&calls](Context&, std::uint64_t, std::uint64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallel_for(ctx, 5, 6, 10,
                 [&calls](Context&, std::uint64_t a, std::uint64_t b) {
                   EXPECT_EQ(a, 5u);
                   EXPECT_EQ(b, 6u);
                   ++calls;
                 });
    EXPECT_EQ(calls, 1);
    // grain 0 is treated as 1.
    parallel_for(ctx, 0, 3, 0,
                 [&calls](Context&, std::uint64_t, std::uint64_t) { ++calls; });
    EXPECT_EQ(calls, 4);
    return 0;
  });
}

TEST(Parallel, SpeedsUpChunkyWork) {
  auto duration = [](std::uint32_t nodes) {
    Machine m(cfg(nodes), opts(SchedMode::kHybrid, nodes > 1));
    auto dur = std::make_shared<Cycles>(0);
    m.run([dur](Context& ctx) -> std::uint64_t {
      const Cycles t0 = ctx.now();
      parallel_for(ctx, 0, 256, 4,
                   [](Context& c, std::uint64_t a, std::uint64_t b) {
                     c.compute(300 * (b - a));
                   });
      *dur = ctx.now() - t0;
      return 0;
    });
    return *dur;
  };
  const Cycles one = duration(1);
  const Cycles sixteen = duration(16);
  EXPECT_LT(sixteen * 5, one);  // at least 5x on 16 nodes
}

TEST(Parallel, NestedLoopsCompose) {
  Machine m(cfg(8), opts(SchedMode::kHybrid));
  const std::uint64_t r = m.run([](Context& ctx) -> std::uint64_t {
    // sum over i<10, j<20 of (i*20+j) — via nested parallel loops.
    return parallel_reduce(
        ctx, 0, 10, 2,
        [](Context& c, std::uint64_t i0, std::uint64_t i1) -> std::uint64_t {
          std::uint64_t s = 0;
          for (std::uint64_t i = i0; i < i1; ++i) {
            s += parallel_reduce(
                c, 0, 20, 5,
                [i](Context& cc, std::uint64_t j0,
                    std::uint64_t j1) -> std::uint64_t {
                  std::uint64_t t = 0;
                  for (std::uint64_t j = j0; j < j1; ++j) {
                    t += i * 20 + j;
                    cc.compute(3);
                  }
                  return t;
                });
          }
          return s;
        });
  });
  EXPECT_EQ(r, 199u * 200 / 2);
}

}  // namespace
}  // namespace alewife
