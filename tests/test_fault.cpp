// Fault injection, reliable delivery and the watchdog (ISSUE: robustness).
//
// The machine must produce *correct answers* — not merely finish — while the
// network drops, duplicates, corrupts, delays and severs links under it, and
// must convert an unrecoverable livelock into a structured diagnostic rather
// than spinning forever.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "apps/grain.hpp"
#include "apps/jacobi.hpp"
#include "core/machine.hpp"
#include "runtime/barrier.hpp"
#include "runtime/msg_types.hpp"

namespace alewife {
namespace {

MachineConfig faulty_cfg(std::uint32_t nodes, double drop, double dup = 0.0,
                         double corrupt = 0.0) {
  MachineConfig c;
  c.nodes = nodes;
  c.rng_seed = 0xFA17;
  c.max_cycles = 500'000'000;
  c.fault.drop_rate = drop;
  c.fault.dup_rate = dup;
  c.fault.corrupt_rate = corrupt;
  // Every fault workload also runs under the golden-model checker with a
  // 16-line 2-way cache, so recovery paths (retransmitted DMA storebacks,
  // replayed handler side effects) are cross-checked against the oracle
  // while evictions and writebacks fire constantly (docs/CHECKING.md).
  c.check.enabled = true;
  c.cache_size_bytes = 512;
  c.cache_ways = 2;
  return c;
}

// Run `episodes` message-barrier episodes across all nodes; returns total
// barrier-phase cycles on node 0.
Cycles run_barrier(Machine& m, std::uint32_t episodes) {
  CombiningBarrier bar(m.runtime(), CombiningBarrier::Mech::kMsg, 8);
  auto t0 = std::make_shared<Cycles>(0);
  auto t1 = std::make_shared<Cycles>(0);
  for (NodeId n = 0; n < m.nodes(); ++n) {
    m.start_thread(n, [&bar, t0, t1, n, episodes](Context& ctx) {
      if (n == 0) *t0 = ctx.now();
      for (std::uint32_t e = 0; e < episodes; ++e) bar.wait(ctx);
      if (n == 0) *t1 = ctx.now();
    });
  }
  m.run_started();
  return *t1 - *t0;
}

TEST(Fault, BarrierCompletesUnderDropAndDup) {
  Machine m(faulty_cfg(64, /*drop=*/0.05, /*dup=*/0.02));
  const Cycles cycles = run_barrier(m, 4);
  EXPECT_GT(cycles, 0u);
  // The faults really happened, and the reliable layer really recovered.
  EXPECT_GT(m.stats().get(MetricId::kFaultDrops), 0u);
  EXPECT_GT(m.stats().get(MetricId::kFaultDups), 0u);
  EXPECT_GT(m.stats().get(MetricId::kRelRetransmits), 0u);
  EXPECT_GT(m.stats().get(MetricId::kRelAcksSent), 0u);
  EXPECT_GT(m.stats().get(MetricId::kRelDupsDropped), 0u);
  EXPECT_EQ(m.stats().get(MetricId::kRelSendFailures), 0u);
}

TEST(Fault, BulkTransferSurvivesDropDupAndCorruption) {
  Machine m(faulty_cfg(16, /*drop=*/0.08, /*dup=*/0.04, /*corrupt=*/0.04));
  constexpr std::uint32_t kBytes = 4096;
  GAddr src = 0, dst = 0;
  m.run([&](Context& ctx) -> std::uint64_t {
    src = ctx.shmalloc(0, kBytes);
    dst = ctx.shmalloc(5, kBytes);
    for (std::uint32_t i = 0; i < kBytes; i += 8) {
      ctx.store(src + i, 0x1234'5678'0000ull + i);
    }
    m.bulk().copy(ctx, dst, src, kBytes, CopyImpl::kMsgDma);
    return 0;
  });
  // Every byte must have landed intact despite in-flight corruption: the
  // checksum nack + retransmit path delivers pristine data or nothing.
  const BackingStore& store = m.memory().store();
  for (std::uint32_t i = 0; i < kBytes; i += 8) {
    ASSERT_EQ(store.read_uint(dst + i, 8), 0x1234'5678'0000ull + i)
        << "byte offset " << i;
  }
  EXPECT_GT(m.stats().get(MetricId::kFaultDrops), 0u);
}

TEST(Fault, JacobiUnderFaultsMatchesReference) {
  const auto f = [](std::uint32_t r, std::uint32_t c) {
    return 0.01 * r - 0.02 * c;
  };
  constexpr std::uint32_t kGrid = 32;
  constexpr std::uint32_t kIters = 4;

  Machine m(faulty_cfg(16, /*drop=*/0.05, /*dup=*/0.02, /*corrupt=*/0.02));
  apps::JacobiSetup s = apps::jacobi_setup(m, kGrid);
  apps::jacobi_init(m, s, f);
  CombiningBarrier bar(m.runtime(), CombiningBarrier::Mech::kShm, 2);
  for (NodeId n = 0; n < m.nodes(); ++n) {
    m.start_thread(n, [&, n](Context& ctx) {
      apps::jacobi_node(ctx, s, /*msg_variant=*/true, kIters, bar, m.bulk());
    });
  }
  m.run_started();

  const std::vector<double> got = apps::jacobi_extract(m, s, kIters);
  const std::vector<double> want = apps::jacobi_reference(kGrid, f, kIters);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_DOUBLE_EQ(got[i], want[i]) << "grid element " << i;
  }
  EXPECT_GT(m.stats().get(MetricId::kFaultDrops), 0u);
}

TEST(Fault, ScheduledLinkOutageIsRoutedAround) {
  // Sever the 0-1 link for a window in the middle of the run. Dimension-order
  // routing cannot detour, so packets crossing it die at the dead link and
  // the reliable layer retransmits them after the link comes back.
  MachineConfig c = faulty_cfg(16, /*drop=*/0.0);
  c.fault.outages.push_back(LinkOutage{0, 1, 1'000, 30'000});
  Machine m(c);
  const Cycles cycles = run_barrier(m, 6);
  EXPECT_GT(cycles, 0u);
  EXPECT_GT(m.stats().get(MetricId::kFaultLinkDrops), 0u);
  EXPECT_GT(m.stats().get(MetricId::kRelRetransmits), 0u);
  EXPECT_EQ(m.stats().get(MetricId::kRelSendFailures), 0u);
}

TEST(Fault, DegradationIsMonotonicInDropRate) {
  Cycles prev = 0;
  for (const double drop : {0.0, 0.05, 0.15}) {
    Machine m(faulty_cfg(16, drop, drop / 2.0));
    const Cycles cycles = run_barrier(m, 4);
    EXPECT_GT(cycles, prev) << "drop rate " << drop
                            << " should cost more than the previous point";
    prev = cycles;
  }
}

TEST(Fault, WatchdogTripsOnLivelock) {
  // 100% loss: every transmission (and every retransmission) dies. Retries
  // exhaust, nothing makes progress, yet idle loops keep the event queue
  // busy forever — exactly the silent livelock the watchdog exists for.
  MachineConfig c = faulty_cfg(16, /*drop=*/1.0);
  c.fault.watchdog_interval = 200'000;
  Machine m(c);
  try {
    run_barrier(m, 2);
    FAIL() << "livelocked run should have tripped the watchdog";
  } catch (const WatchdogError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no progress"), std::string::npos) << what;
    EXPECT_NE(what.find("network:"), std::string::npos) << what;
    EXPECT_NE(what.find("unacked"), std::string::npos) << what;
  }
  EXPECT_EQ(m.stats().get(MetricId::kWatchdogTrips), 1u);
}

TEST(Fault, ReceiveWindowOverflowRecoversExactlyOnce) {
  // A one-packet receive window plus loss forces out-of-window arrivals
  // (seq N+1 lands while seq N is still being retransmitted). Every message
  // must still be delivered exactly once, in order per sender.
  MachineConfig c = faulty_cfg(4, /*drop=*/0.3);
  c.fault.recv_window = 1;
  Machine m(c);
  constexpr std::uint32_t kPerSender = 20;
  std::set<std::pair<NodeId, std::uint64_t>> seen;
  std::vector<std::uint64_t> last_idx(m.nodes(), 0);
  m.cmmu(0).set_handler(
      kMsgUserBase + 1, [&](HandlerCtx& hc, MsgView& msg) {
        const std::uint64_t idx = msg.operand(hc, 0);
        EXPECT_TRUE(seen.emplace(msg.src(), idx).second)
            << "duplicate delivery of message " << idx << " from n"
            << msg.src();
        EXPECT_GT(idx, last_idx[msg.src()]) << "reordered delivery";
        last_idx[msg.src()] = idx;
      });
  for (NodeId n = 1; n < m.nodes(); ++n) {
    m.start_thread(n, [n](Context& ctx) {
      for (std::uint64_t i = 1; i <= kPerSender; ++i) {
        MsgDescriptor d;
        d.dst = 0;
        d.type = kMsgUserBase + 1;
        d.operands = {i};
        ctx.send(d);
      }
    });
  }
  m.run_started();
  EXPECT_EQ(seen.size(), std::size_t{kPerSender} * (m.nodes() - 1));
  EXPECT_GT(m.stats().get(MetricId::kRelWindowOverflows), 0u);
  EXPECT_EQ(m.stats().get(MetricId::kRelSendFailures), 0u);
}

TEST(Fault, QueueFullDegradesToInlineExecution) {
  // Satellite: a spawn storm against a tiny shm queue must not abort with an
  // overflow error — overflowing spawns run inline (eager evaluation) and
  // the pressure is visible in rt.queue_full.
  MachineConfig c;
  c.nodes = 4;
  c.rng_seed = 0xFA17;
  c.max_cycles = 500'000'000;
  RuntimeOptions o;
  o.mode = SchedMode::kShm;
  o.queue_capacity = 4;
  Machine m(c, o);
  const std::uint64_t leaves = m.run([](Context& ctx) -> std::uint64_t {
    return apps::grain_parallel(ctx, /*depth=*/8, /*delay=*/5);
  });
  EXPECT_EQ(leaves, 1u << 8);
  EXPECT_GT(m.stats().get(MetricId::kRtQueueFull), 0u);
}

TEST(Fault, QueueFullCarriesHomeAndCapacity) {
  const QueueFull e(7, 16);
  EXPECT_EQ(e.home(), 7u);
  EXPECT_EQ(e.capacity(), 16u);
  EXPECT_NE(std::string(e.what()).find("node 7"), std::string::npos);
}

TEST(Fault, SimTimeoutCarriesDiagnostics) {
  // Satellite: a run that exceeds max_cycles must name the cycle, the
  // pending-event count, and the per-node machine state — not just "timed
  // out".
  MachineConfig c;
  c.nodes = 4;
  c.rng_seed = 1;
  c.max_cycles = 50'000;
  Machine m(c);
  try {
    m.run([](Context& ctx) -> std::uint64_t {
      for (;;) ctx.compute(100);  // never finishes
    });
    FAIL() << "run should have exceeded max_cycles";
  } catch (const SimTimeout& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pending"), std::string::npos) << what;
    EXPECT_NE(what.find("n0:"), std::string::npos) << what;
  }
}

TEST(Fault, ConfigValidationRejectsBadSpecs) {
  MachineConfig c;
  c.nodes = 16;
  c.fault.drop_rate = 1.5;
  EXPECT_THROW(Machine m(c), std::invalid_argument);

  c.fault.drop_rate = 0.0;
  c.fault.outages.push_back(LinkOutage{0, 99, 0, 100});
  EXPECT_THROW(Machine m(c), std::invalid_argument);

  EXPECT_THROW(FaultConfig::parse_outage("garbage"), std::invalid_argument);
  EXPECT_THROW(FaultConfig::parse_outage("0,1@50..50x"),
               std::invalid_argument);
  const LinkOutage o = FaultConfig::parse_outage("3,7@100..2000");
  EXPECT_EQ(o.a, 3u);
  EXPECT_EQ(o.b, 7u);
  EXPECT_EQ(o.from, 100u);
  EXPECT_EQ(o.until, 2000u);
}

}  // namespace
}  // namespace alewife
