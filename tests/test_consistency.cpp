// Memory-model litmus tests: the simulated machine implements sequential
// consistency (Alewife's model), so the classic weak-memory outcomes must be
// unobservable across many timing-randomized trials — and the machine must
// behave identically across cache geometries.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "sim/rng.hpp"

namespace alewife {
namespace {

MachineConfig cfg(std::uint32_t nodes) {
  MachineConfig c;
  c.nodes = nodes;
  c.max_cycles = 100'000'000;
  // The whole suite runs under the golden-model checker: every litmus and
  // geometry workload doubles as a protocol self-check (docs/CHECKING.md).
  c.check.enabled = true;
  return c;
}

RuntimeOptions quiet() {
  RuntimeOptions o;
  o.stealing = false;
  return o;
}

// ---------------------------------------------------------------------------
// Litmus: message passing (MP)
//   P0: x = 1; y = 1        P1: r1 = y; r2 = x
// SC forbids (r1 == 1 && r2 == 0).
// ---------------------------------------------------------------------------
TEST(Litmus, MessagePassingForbiddenOutcome) {
  Rng rng(5150);
  for (int trial = 0; trial < 30; ++trial) {
    MachineConfig c = cfg(4);
    c.rng_seed = rng.next();
    Machine m(c, quiet());
    const GAddr x = m.shmalloc(2, 64);
    const GAddr y = m.shmalloc(3, 64);
    auto r1 = std::make_shared<std::uint64_t>(0);
    auto r2 = std::make_shared<std::uint64_t>(0);
    const Cycles skew0 = rng.below(120), skew1 = rng.below(120);

    m.start_thread(0, [=](Context& ctx) {
      ctx.compute(skew0);
      ctx.store(x, 1);
      ctx.store(y, 1);
    });
    m.start_thread(1, [=](Context& ctx) {
      ctx.compute(skew1);
      *r1 = ctx.load(y);
      *r2 = ctx.load(x);
    });
    m.run_started();
    EXPECT_FALSE(*r1 == 1 && *r2 == 0)
        << "MP violation at trial " << trial;
    m.memory().check_invariants();
  }
}

// ---------------------------------------------------------------------------
// Litmus: store buffering (SB)
//   P0: x = 1; r1 = y       P1: y = 1; r2 = x
// SC forbids (r1 == 0 && r2 == 0).
// ---------------------------------------------------------------------------
TEST(Litmus, StoreBufferingForbiddenOutcome) {
  Rng rng(61);
  for (int trial = 0; trial < 30; ++trial) {
    MachineConfig c = cfg(4);
    c.rng_seed = rng.next();
    Machine m(c, quiet());
    const GAddr x = m.shmalloc(2, 64);
    const GAddr y = m.shmalloc(3, 64);
    auto r1 = std::make_shared<std::uint64_t>(9);
    auto r2 = std::make_shared<std::uint64_t>(9);
    const Cycles skew0 = rng.below(80), skew1 = rng.below(80);

    m.start_thread(0, [=](Context& ctx) {
      ctx.compute(skew0);
      ctx.store(x, 1);
      *r1 = ctx.load(y);
    });
    m.start_thread(1, [=](Context& ctx) {
      ctx.compute(skew1);
      ctx.store(y, 1);
      *r2 = ctx.load(x);
    });
    m.run_started();
    EXPECT_FALSE(*r1 == 0 && *r2 == 0)
        << "SB violation at trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Litmus: coherence (CO) — all processors agree on each location's final
// value, and a reader never sees values of one location out of order.
// ---------------------------------------------------------------------------
TEST(Litmus, SingleLocationCoherence) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    MachineConfig c = cfg(8);
    c.rng_seed = rng.next();
    Machine m(c, quiet());
    const GAddr x = m.shmalloc(0, 64);
    // Writers store strictly increasing values; readers sample repeatedly
    // and must observe a non-decreasing sequence.
    auto ok = std::make_shared<bool>(true);
    for (NodeId w = 0; w < 4; ++w) {
      m.start_thread(w, [=, &m](Context& ctx) {
        for (int i = 0; i < 10; ++i) {
          // fetch_add keeps the value monotone under concurrent writers.
          ctx.fetch_add(x, 1);
          ctx.compute(10 + (w * 7 + i * 13) % 30);
        }
        (void)m;
      });
    }
    for (NodeId r = 4; r < 8; ++r) {
      m.start_thread(r, [=](Context& ctx) {
        std::uint64_t last = 0;
        for (int i = 0; i < 25; ++i) {
          const std::uint64_t v = ctx.load(x);
          if (v < last) *ok = false;
          last = v;
          ctx.compute(7 + (r * 3 + i) % 20);
        }
      });
    }
    m.run_started();
    EXPECT_TRUE(*ok) << "coherence order violation at trial " << trial;
    EXPECT_EQ(m.memory().store().read_uint(x, 8), 40u);
    m.memory().check_invariants();
  }
}

// ---------------------------------------------------------------------------
// Atomicity across the full config space
// ---------------------------------------------------------------------------

struct GeomParam {
  std::uint32_t nodes;
  std::uint32_t cache_bytes;
  std::uint32_t ways;
  std::uint32_t line;
};

class Geometry : public ::testing::TestWithParam<GeomParam> {};

TEST_P(Geometry, CountersStayExactAndCoherent) {
  const GeomParam p = GetParam();
  MachineConfig c = cfg(p.nodes);
  c.cache_size_bytes = p.cache_bytes;
  c.cache_ways = p.ways;
  c.cache_line_bytes = p.line;
  Machine m(c, quiet());
  const GAddr ctr = m.shmalloc(p.nodes - 1, p.line);
  constexpr int kPerNode = 20;
  for (NodeId n = 0; n < p.nodes; ++n) {
    m.start_thread(n, [=](Context& ctx) {
      for (int i = 0; i < kPerNode; ++i) {
        ctx.fetch_add(ctr, 1);
        ctx.compute((n * 13 + i * 7) % 40);
      }
    });
  }
  m.run_started();
  EXPECT_EQ(m.memory().store().read_uint(ctr, 8),
            std::uint64_t{p.nodes} * kPerNode);
  m.memory().check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Geometry,
    ::testing::Values(GeomParam{2, 1024, 1, 16},    // tiny direct-mapped
                      GeomParam{4, 4096, 2, 16},
                      GeomParam{4, 4096, 2, 32},    // wider lines
                      GeomParam{8, 2048, 4, 64},
                      GeomParam{16, 65536, 2, 16},
                      GeomParam{3, 4096, 2, 16},    // non-square mesh
                      GeomParam{7, 4096, 1, 16},    // prime node count
                      // 2-way caches of 2-4 lines: every miss evicts, so the
                      // counter traffic is dominated by writeback/refill
                      // races — the checker's richest hunting ground.
                      GeomParam{4, 32, 2, 16},
                      GeomParam{8, 64, 2, 16}));

TEST(AccessSizes, SubWordLoadsAndStores) {
  Machine m(cfg(2), quiet());
  m.run([](Context& ctx) -> std::uint64_t {
    const GAddr a = ctx.shmalloc(1, 64);
    ctx.store(a, 0x1122334455667788ull, 8);
    EXPECT_EQ(ctx.load(a, 1), 0x88u);         // little-endian byte
    EXPECT_EQ(ctx.load(a, 2), 0x7788u);
    EXPECT_EQ(ctx.load(a, 4), 0x55667788u);
    ctx.store(a + 4, 0xAABBCCDD, 4);
    EXPECT_EQ(ctx.load(a, 8), 0xAABBCCDD55667788ull);
    ctx.store(a + 1, 0xEE, 1);
    EXPECT_EQ(ctx.load(a, 2), 0xEE88u);
    return 0;
  });
}

TEST(AccessSizes, MixedSizesAcrossNodes) {
  Machine m(cfg(4), quiet());
  m.run([](Context& ctx) -> std::uint64_t {
    const GAddr a = ctx.shmalloc(3, 64);
    for (std::uint32_t i = 0; i < 16; ++i) ctx.store(a + i, i, 1);
    std::uint64_t sum = 0;
    for (std::uint32_t i = 0; i < 16; ++i) sum += ctx.load(a + i, 1);
    EXPECT_EQ(sum, 120u);
    return 0;
  });
  m.memory().check_invariants();
}

}  // namespace
}  // namespace alewife
