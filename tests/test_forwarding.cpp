// Tests for the direct cache-to-cache forwarding option (DASH-style), the
// alternative to Alewife's through-home dirty-data path that §2.2 singles
// out as a shared-memory defect.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "sim/rng.hpp"

namespace alewife {
namespace {

MachineConfig cfg(std::uint32_t nodes, bool fwd) {
  MachineConfig c;
  c.nodes = nodes;
  c.forward_dirty_direct = fwd;
  c.max_cycles = 100'000'000;
  return c;
}

RuntimeOptions quiet() {
  RuntimeOptions o;
  o.stealing = false;
  return o;
}

TEST(Forwarding, ValuesSurviveDirectTransfer) {
  Machine m(cfg(8, true), quiet());
  const GAddr a = m.shmalloc(4, 64);
  m.run([a](Context& ctx) -> std::uint64_t {
    ctx.store(a, 4242);  // dirty in node 0's cache, homed on node 4
    return 0;
  });
  // A third node reads it: direct owner -> requester transfer.
  auto got = std::make_shared<std::uint64_t>(0);
  m.start_thread(7, [got, a](Context& ctx) { *got = ctx.load(a); });
  m.run_started();
  EXPECT_EQ(*got, 4242u);
  EXPECT_GT(m.stats().get("mem.direct_forwards"), 0u);
  m.memory().check_invariants();
}

TEST(Forwarding, DirtyReadIsFasterThanThroughHome) {
  // Triangle: requester 0, home 63 (far corner), owner 1 (adjacent to the
  // requester). Through-home pays 0->63->1->63->0; direct pays 0->63->1->0.
  auto dirty_read_latency = [](bool fwd) {
    Machine m(cfg(64, fwd), quiet());
    const GAddr a = m.shmalloc(63, 64);
    auto latency = std::make_shared<Cycles>(0);
    HostBarrier sync(m, 2);
    m.start_thread(1, [&, a](Context& ctx) {
      ctx.store(a, 5);  // node 1 owns the line dirty
      sync.wait(ctx);
    });
    m.start_thread(0, [&, a](Context& ctx) {
      sync.wait(ctx);
      const Cycles t0 = ctx.now();
      ctx.load(a);
      *latency = ctx.now() - t0;
    });
    m.run_started();
    return *latency;
  };
  const Cycles through_home = dirty_read_latency(false);
  const Cycles direct = dirty_read_latency(true);
  EXPECT_LT(direct, through_home);
}

TEST(Forwarding, WritesToDirtyLinesStayAtomic) {
  // A contended counter where the line is always dirty somewhere: the
  // forwarded exclusive transfers must preserve atomicity.
  for (bool fwd : {false, true}) {
    Machine m(cfg(8, fwd), quiet());
    const GAddr ctr = m.shmalloc(3, 64);
    constexpr int kPerNode = 25;
    for (NodeId n = 0; n < 8; ++n) {
      m.start_thread(n, [=](Context& ctx) {
        for (int i = 0; i < kPerNode; ++i) {
          ctx.fetch_add(ctr, 1);
          ctx.compute((n * 11 + i * 3) % 17);
        }
      });
    }
    m.run_started();
    EXPECT_EQ(m.memory().store().read_uint(ctr, 8), 8u * kPerNode)
        << "fwd=" << fwd;
    m.memory().check_invariants();
  }
}

TEST(Forwarding, RandomStressKeepsInvariants) {
  Rng rng(2024);
  for (bool fwd : {false, true}) {
    Machine m(cfg(8, fwd), quiet());
    std::vector<GAddr> addrs;
    for (int i = 0; i < 8; ++i) {
      addrs.push_back(m.shmalloc(static_cast<NodeId>(rng.below(8)), 16));
    }
    for (NodeId n = 0; n < 8; ++n) {
      const std::uint64_t seed = rng.next();
      m.start_thread(n, [&, n, seed](Context& ctx) {
        Rng r(seed);
        for (int i = 0; i < 60; ++i) {
          const GAddr a = addrs[r.below(addrs.size())];
          switch (r.below(3)) {
            case 0:
              ctx.load(a);
              break;
            case 1:
              ctx.store(a, r.next());
              break;
            default:
              ctx.swap(a, r.next());
              break;
          }
          ctx.compute(r.below(25));
        }
      });
    }
    m.run_started();
    m.memory().check_invariants();
  }
}

TEST(Forwarding, LockBounceIsCheaperWithForwarding) {
  // Two nodes ping-pong a test&set lock whose home is a third, distant node
  // — the §2.2 "intermediate node" scenario.
  auto bounce_time = [](bool fwd) {
    Machine m(cfg(64, fwd), quiet());
    const GAddr lock = m.shmalloc(63, 64);
    auto total = std::make_shared<Cycles>(0);
    for (NodeId n = 0; n < 2; ++n) {
      m.start_thread(n, [=](Context& ctx) {
        const Cycles t0 = ctx.now();
        for (int i = 0; i < 20; ++i) {
          ctx.test_and_set(lock);
          ctx.compute(5);
        }
        if (n == 0) *total = ctx.now() - t0;
      });
    }
    m.run_started();
    return *total;
  };
  EXPECT_LT(bounce_time(true), bounce_time(false));
}

}  // namespace
}  // namespace alewife
