// Fail-stop node faults, failure detection and checkpoint/restore
// (ISSUE: robustness — crash/recovery layer).
//
// A crashed node must surface as *typed errors in bounded time* everywhere
// the runtime can be waiting on it — collectives abort naming the dead
// member, bulk transfers and remote invokes fail with PeerUnreachable,
// shared-memory accesses to a dead home raise HomeNodeDown — and never as a
// silent hang. Crashes are part of the deterministic event stream (equal
// seeds give bit-identical faulty runs), restarts bring nodes back with
// volatile state lost, and a checkpoint taken mid-run proves bit-exact
// against a replay of the same workload.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/grain.hpp"
#include "core/machine.hpp"
#include "runtime/barrier.hpp"
#include "runtime/collective.hpp"
#include "sim/fault.hpp"
#include "sim/snapshot.hpp"

namespace alewife {
namespace {

MachineConfig crash_cfg(std::uint32_t nodes, NodeId victim, Cycles at,
                        Cycles duration = 0) {
  MachineConfig c;
  c.nodes = nodes;
  c.rng_seed = 0xDEAD5EED;
  c.max_cycles = 500'000'000;
  c.fault.node_downs.push_back(NodeDown{victim, at, duration});
  return c;
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Stats digest: final time, app result and every counter. Deliberately
/// excludes the executed-event count so a run with an extra host-side
/// observation event (a checkpoint capture) digests equal to one without.
std::uint64_t stats_digest(Machine& m, std::uint64_t app_result) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, m.sim().now());
  h = fnv1a(h, app_result);
  for (const auto& [name, value] : m.stats().counters()) {
    for (unsigned char ch : name) {
      h ^= ch;
      h *= 0x100000001b3ull;
    }
    h = fnv1a(h, value);
  }
  return h;
}

MachineSnapshot capture(Machine& m) {
  MachineSnapshot s;
  s.cycle = m.sim().now();
  s.events = m.sim().events_executed();
  s.seed = m.config().rng_seed;
  s.nodes = m.nodes();
  s.workload = "test";
  s.stats = m.stats().snapshot();
  return s;
}

// ---------------------------------------------------------------------------
// Typed errors in bounded time
// ---------------------------------------------------------------------------

TEST(Crash, CollectiveBarrierAbortsNamingDeadMember) {
  MachineConfig c = crash_cfg(16, /*victim=*/5, /*at=*/2000);
  Machine m(c);
  Communicator comm(m.runtime(), CollectiveConfig{CollMech::kMsg});
  for (NodeId n = 0; n < m.nodes(); ++n) {
    m.start_thread(n, [&comm](Context& ctx) {
      for (int e = 0; e < 1000; ++e) comm.barrier(ctx);
    });
  }
  try {
    m.run_started();
    FAIL() << "expected CollectiveAborted";
  } catch (const CollectiveAborted& e) {
    EXPECT_EQ(e.node(), 5u);
  }
  // Fast-fail, not watchdog: the abort must land within the retry budget
  // plus one probe period, far under the 2M-cycle watchdog interval.
  EXPECT_LT(m.sim().now(), 2'000'000u);
  EXPECT_EQ(m.stats().get(MetricId::kFaultNodeCrashes), 1u);
  EXPECT_GE(m.stats().get(MetricId::kCollAborts), 1u);
  EXPECT_GE(m.stats().get(MetricId::kRelPeersDeclaredDead), 1u);
  EXPECT_EQ(m.stats().get(MetricId::kWatchdogTrips), 0u);
}

TEST(Crash, CollectiveAllreduceHybridAborts) {
  MachineConfig c = crash_cfg(16, /*victim=*/3, /*at=*/1500);
  Machine m(c);
  CollectiveConfig cc;
  cc.mech = CollMech::kHybrid;
  cc.group = 4;
  Communicator comm(m.runtime(), cc);
  for (NodeId n = 0; n < m.nodes(); ++n) {
    m.start_thread(n, [&comm, n](Context& ctx) {
      for (int e = 0; e < 1000; ++e) comm.allreduce(ctx, n + e);
    });
  }
  try {
    m.run_started();
    FAIL() << "expected CollectiveAborted";
  } catch (const CollectiveAborted& e) {
    EXPECT_EQ(e.node(), 3u);
  }
  EXPECT_LT(m.sim().now(), 2'000'000u);
  EXPECT_GE(m.stats().get(MetricId::kCollAborts), 1u);
}

TEST(Crash, ScatterToDeadMemberAborts) {
  MachineConfig c = crash_cfg(8, /*victim=*/6, /*at=*/1000);
  Machine m(c);
  Communicator comm(m.runtime(), CollectiveConfig{CollMech::kMsg});
  BackingStore& store = m.runtime().ms.store();
  constexpr std::uint32_t kSlice = 64;
  const GAddr rootbuf = store.alloc(0, 8ull * kSlice);
  std::vector<GAddr> local;
  for (NodeId i = 0; i < 8; ++i) local.push_back(store.alloc(i, kSlice));
  for (NodeId n = 0; n < m.nodes(); ++n) {
    m.start_thread(n, [&comm, &local, rootbuf, n](Context& ctx) {
      for (int e = 0; e < 1000; ++e) {
        comm.scatter(ctx, rootbuf, local[n], kSlice);
      }
    });
  }
  try {
    m.run_started();
    FAIL() << "expected CollectiveAborted";
  } catch (const CollectiveAborted& e) {
    EXPECT_EQ(e.node(), 6u);
  }
  EXPECT_LT(m.sim().now(), 2'000'000u);
}

TEST(Crash, BulkCopyToDeadPeerFailsWithPeerUnreachable) {
  MachineConfig c = crash_cfg(8, /*victim=*/3, /*at=*/100);
  Machine m(c);
  constexpr std::uint32_t kBytes = 1024;
  try {
    m.run([&](Context& ctx) -> std::uint64_t {
      const GAddr src = ctx.shmalloc(0, kBytes);
      const GAddr dst = ctx.shmalloc(3, kBytes);
      for (std::uint32_t i = 0; i < kBytes; i += 8) ctx.store(src + i, i);
      ctx.compute(500);  // the victim is dead by now, but not yet suspected
      m.bulk().copy(ctx, dst, src, kBytes, CopyImpl::kMsgDma);
      return 0;
    });
    FAIL() << "expected PeerUnreachable";
  } catch (const PeerUnreachable& e) {
    EXPECT_EQ(e.node(), 3u);
  }
  EXPECT_LT(m.sim().now(), 2'000'000u);
  EXPECT_GE(m.stats().get(MetricId::kRelPeersDeclaredDead), 1u);
}

TEST(Crash, InvokeToDeadPeerFailsTypedThenFastFails) {
  MachineConfig c = crash_cfg(8, /*victim=*/2, /*at=*/100);
  Machine m(c);
  Cycles first_fail = 0, second_fail = 0;
  try {
    m.run([&](Context& ctx) -> std::uint64_t {
      ctx.compute(500);
      // First invoke: the peer is dead but not yet suspected; the request
      // rides retry exhaustion and the touch surfaces a typed error.
      FutureId f = ctx.invoke_msg(2, [](Context&) -> std::uint64_t {
        return 1;
      });
      try {
        ctx.touch(f);
        ADD_FAILURE() << "first touch should have thrown";
      } catch (const PeerUnreachable& e) {
        EXPECT_EQ(e.node(), 2u);
        first_fail = ctx.now();
      }
      // Second invoke: the peer is now a known suspect; the failure is
      // immediate (no second retry storm).
      FutureId g = ctx.invoke_msg(2, [](Context&) -> std::uint64_t {
        return 2;
      });
      const Cycles t0 = ctx.now();
      try {
        ctx.touch(g);
      } catch (const PeerUnreachable&) {
        second_fail = ctx.now() - t0;
      }
      throw PeerUnreachable(2);  // end the run with the typed error
    });
    FAIL() << "expected PeerUnreachable";
  } catch (const PeerUnreachable& e) {
    EXPECT_EQ(e.node(), 2u);
  }
  EXPECT_GT(first_fail, 0u);
  EXPECT_LT(first_fail, 2'000'000u);  // bounded by the retry budget
  EXPECT_LT(second_fail, 1000u);      // fast-fail against a known suspect
  EXPECT_GE(m.stats().get(MetricId::kRtInvokeTimeouts), 2u);
}

TEST(Crash, ShmAccessToDeadHomeRaisesHomeNodeDown) {
  MachineConfig c = crash_cfg(8, /*victim=*/1, /*at=*/100);
  Machine m(c);
  GAddr remote = 0;
  try {
    m.run([&](Context& ctx) -> std::uint64_t {
      remote = ctx.shmalloc(1, 64);
      ctx.compute(500);
      return ctx.load(remote);  // home is fail-stopped: must not hang
    });
    FAIL() << "expected HomeNodeDown";
  } catch (const HomeNodeDown& e) {
    EXPECT_EQ(e.node(), 1u);
    EXPECT_EQ(e.addr(), remote);
  }
}

// ---------------------------------------------------------------------------
// Restart (transient crash)
// ---------------------------------------------------------------------------

TEST(Crash, RestartedNodeServesInvokesAgain) {
  // Node 1 is down for cycles [500, 1500); nothing talks to it while it is
  // dead, so nobody suspects it, and after the restart it must serve remote
  // invokes exactly like a freshly booted node.
  MachineConfig c = crash_cfg(8, /*victim=*/1, /*at=*/500, /*duration=*/1000);
  Machine m(c);
  bool down_mid_window = false;
  m.at_cycle(1000, [&] { down_mid_window = m.node_is_down(1); });
  const std::uint64_t got = m.run([&](Context& ctx) -> std::uint64_t {
    ctx.compute(3000);  // past the restart
    FutureId f = ctx.invoke_msg(1, [](Context&) -> std::uint64_t {
      return 42;
    });
    return ctx.touch(f);
  });
  EXPECT_EQ(got, 42u);
  EXPECT_TRUE(down_mid_window);
  EXPECT_FALSE(m.node_is_down(1));
  EXPECT_EQ(m.stats().get(MetricId::kFaultNodeCrashes), 1u);
}

// ---------------------------------------------------------------------------
// Watchdog dump (legacy barrier has no abort path: the dump must name the
// dead node and who declared it dead)
// ---------------------------------------------------------------------------

TEST(Crash, WatchdogDumpNamesDeadPeerAndSuspicions) {
  // An application that learns of the death (so node 1 declares node 0
  // dead) and then deadlocks itself anyway: the watchdog must convert the
  // hang into a diagnostic whose liveness section names the fail-stopped
  // node and who declared it dead. A shrunk retry budget keeps detection
  // fast; a shrunk watchdog interval keeps the test fast.
  MachineConfig c = crash_cfg(4, /*victim=*/0, /*at=*/500);
  c.fault.retrans_timeout = 256;
  c.fault.max_retries = 4;
  c.fault.watchdog_interval = 150'000;
  Machine m(c);
  for (NodeId n = 1; n < m.nodes(); ++n) {
    m.start_thread(n, [](Context& ctx) {
      if (ctx.node() != 1) return;
      ctx.compute(2000);  // the victim is dead by now
      FutureId f = ctx.invoke_msg(0, [](Context&) -> std::uint64_t {
        return 1;
      });
      try {
        ctx.touch(f);
      } catch (const PeerUnreachable&) {
        // Now a deliberate bug: suspend with nobody left to wake us.
        ctx.suspend();
      }
    });
  }
  try {
    m.run_started();
    FAIL() << "expected WatchdogError";
  } catch (const WatchdogError& e) {
    const std::string dump = e.what();
    EXPECT_NE(dump.find("DOWN (fail-stop)"), std::string::npos) << dump;
    EXPECT_NE(dump.find("declares-dead"), std::string::npos) << dump;
  }
  EXPECT_GE(m.stats().get(MetricId::kRelPeersDeclaredDead), 1u);
}

// ---------------------------------------------------------------------------
// Determinism: crashes are part of the seeded event stream
// ---------------------------------------------------------------------------

/// Collective episodes where every thread absorbs the abort, so the faulty
/// run completes and can be digested.
std::uint64_t run_absorbing_collective(const MachineConfig& c) {
  Machine m(c);
  Communicator comm(m.runtime(), CollectiveConfig{CollMech::kMsg});
  auto aborts = std::make_shared<std::uint64_t>(0);
  for (NodeId n = 0; n < m.nodes(); ++n) {
    m.start_thread(n, [&comm, aborts](Context& ctx) {
      try {
        for (int e = 0; e < 1000; ++e) comm.barrier(ctx);
      } catch (const CollectiveAborted&) {
        ++*aborts;
      }
    });
  }
  m.run_started();
  return stats_digest(m, *aborts);
}

TEST(Crash, EqualSeedsGiveBitIdenticalCrashRuns) {
  const MachineConfig c = crash_cfg(16, /*victim=*/7, /*at=*/2500);
  const std::uint64_t a = run_absorbing_collective(c);
  const std::uint64_t b = run_absorbing_collective(c);
  EXPECT_EQ(a, b);

  MachineConfig c2 = c;
  c2.rng_seed = 0x0DD5EED;
  EXPECT_NE(run_absorbing_collective(c2), a)
      << "different seeds should not collide on the full stats digest";
}

// ---------------------------------------------------------------------------
// Five reference workloads: faults-off determinism and checkpoint/restore
// digest equality
// ---------------------------------------------------------------------------

struct Workload {
  const char* name;
  Cycles capture_at;  ///< mid-run cycle for the checkpoint battery
  std::uint64_t (*run)(Machine& m);
};

std::uint64_t wl_grain(Machine& m) {
  return m.run([](Context& ctx) -> std::uint64_t {
    return apps::grain_parallel(ctx, /*depth=*/7, /*delay=*/20);
  });
}

std::uint64_t wl_barrier(Machine& m) {
  CombiningBarrier bar(m.runtime(), CombiningBarrier::Mech::kMsg, 8);
  for (NodeId n = 0; n < m.nodes(); ++n) {
    m.start_thread(n, [&bar](Context& ctx) {
      for (int e = 0; e < 6; ++e) bar.wait(ctx);
    });
  }
  m.run_started();
  return 0;
}

std::uint64_t wl_allreduce(Machine& m) {
  CollectiveConfig cc;
  cc.mech = CollMech::kHybrid;
  cc.group = 4;
  auto comm = std::make_shared<Communicator>(m.runtime(), cc);
  auto sum = std::make_shared<std::uint64_t>(0);
  for (NodeId n = 0; n < m.nodes(); ++n) {
    m.start_thread(n, [comm, sum, n](Context& ctx) {
      for (int e = 0; e < 4; ++e) {
        const std::uint64_t v = comm->allreduce(ctx, n + e);
        if (ctx.node() == 0) *sum += v;
      }
    });
  }
  m.run_started();
  return *sum;
}

std::uint64_t wl_bulk(Machine& m) {
  constexpr std::uint32_t kBytes = 4096;
  return m.run([&m](Context& ctx) -> std::uint64_t {
    const GAddr src = ctx.shmalloc(0, kBytes);
    const GAddr dst = ctx.shmalloc(3, kBytes);
    for (std::uint32_t i = 0; i < kBytes; i += 8) ctx.store(src + i, i * 3);
    m.bulk().copy(ctx, dst, src, kBytes, CopyImpl::kMsgDma);
    return ctx.load(dst + kBytes - 8);
  });
}

std::uint64_t wl_spawn_tree(Machine& m) {
  // Work-stealing spawn tree: the runtime path (steal messages, futures)
  // under the default hybrid scheduler.
  return m.run([](Context& ctx) -> std::uint64_t {
    return apps::grain_parallel(ctx, /*depth=*/9, /*delay=*/5);
  });
}

const Workload kWorkloads[] = {
    {"grain", 1000, wl_grain},       {"barrier", 800, wl_barrier},
    {"allreduce", 800, wl_allreduce}, {"bulk", 500, wl_bulk},
    {"spawn_tree", 1000, wl_spawn_tree},
};

MachineConfig ref_cfg() {
  MachineConfig c;
  c.nodes = 8;
  c.rng_seed = 0x5EED;
  c.max_cycles = 500'000'000;
  return c;
}

TEST(Crash, FaultsOffReferenceWorkloadsAreBitIdentical) {
  // With no faults configured, none of the crash subsystem arms — two fresh
  // machines must digest bit-identically on every reference workload.
  for (const Workload& w : kWorkloads) {
    Machine a(ref_cfg());
    Machine b(ref_cfg());
    const std::uint64_t ra = w.run(a);
    const std::uint64_t rb = w.run(b);
    EXPECT_EQ(stats_digest(a, ra), stats_digest(b, rb)) << w.name;
  }
}

TEST(Crash, CheckpointRestoreReproducesUninterruptedDigest) {
  for (const Workload& w : kWorkloads) {
    // Uninterrupted reference run.
    Machine ref(ref_cfg());
    const std::uint64_t r_ref = w.run(ref);
    const std::uint64_t d_ref = stats_digest(ref, r_ref);

    // Capture run: a snapshot is taken mid-run; the observation must not
    // perturb the machine (same final digest as the uninterrupted run).
    Machine cap(ref_cfg());
    MachineSnapshot snap;
    bool captured = false;
    cap.at_cycle(w.capture_at, [&] {
      snap = capture(cap);
      snap.digest = MachineSnapshot::compute_digest(snap);
      captured = true;
    });
    const std::uint64_t r_cap = w.run(cap);
    ASSERT_TRUE(captured) << w.name << ": run ended before the capture cycle";
    EXPECT_EQ(stats_digest(cap, r_cap), d_ref)
        << w.name << ": the capture perturbed the run";

    // Round-trip the snapshot through its serialized form.
    std::stringstream ss;
    write_snapshot(ss, snap);
    const MachineSnapshot loaded = read_snapshot(ss);

    // Restore run: replay the same workload, prove bit-exact equality at
    // the checkpoint cycle, then continue to the same final digest.
    Machine res(ref_cfg());
    bool verified = false;
    res.at_cycle(loaded.cycle, [&] {
      verify_snapshot(loaded, capture(res));  // throws SnapshotMismatch
      verified = true;
    });
    const std::uint64_t r_res = w.run(res);
    ASSERT_TRUE(verified) << w.name;
    EXPECT_EQ(stats_digest(res, r_res), d_ref)
        << w.name << ": restored run diverged after the checkpoint";
  }
}

TEST(Crash, SnapshotRejectsCorruptionAndMismatch) {
  Machine m(ref_cfg());
  (void)wl_grain(m);
  MachineSnapshot s = capture(m);

  std::stringstream ss;
  write_snapshot(ss, s);
  std::string text = ss.str();
  EXPECT_NO_THROW({
    std::stringstream in(text);
    (void)read_snapshot(in);
  });

  // Flip one digit of one counter: the self-digest must catch it.
  const std::size_t pos = text.find("node 1 ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 7] = text[pos + 7] == '9' ? '8' : '9';
  std::stringstream bad(text);
  EXPECT_THROW((void)read_snapshot(bad), SnapshotError);

  // Verification against a different machine state names the divergence.
  MachineSnapshot other = s;
  other.cycle += 1;
  EXPECT_THROW(verify_snapshot(s, other), SnapshotMismatch);
}

}  // namespace
}  // namespace alewife
