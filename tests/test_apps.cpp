// Application-level property tests: grain's closed form, aq's numerics,
// jacobi across grids and variants, accum over random arrays — each checked
// under both scheduler modes where parallelism is involved.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/accum.hpp"
#include "apps/aq.hpp"
#include "apps/grain.hpp"
#include "apps/jacobi.hpp"
#include "core/machine.hpp"
#include "sim/rng.hpp"

namespace alewife {
namespace {

MachineConfig cfg(std::uint32_t nodes) {
  MachineConfig c;
  c.nodes = nodes;
  c.max_cycles = 500'000'000;
  return c;
}

RuntimeOptions opts(SchedMode m, bool steal = true) {
  RuntimeOptions o;
  o.mode = m;
  o.stealing = steal;
  return o;
}

// ---------------------------------------------------------------------------
// grain
// ---------------------------------------------------------------------------

struct GrainParam {
  std::uint32_t depth;
  Cycles delay;
};

class GrainSweep : public ::testing::TestWithParam<GrainParam> {};

TEST_P(GrainSweep, SequentialTimeMatchesClosedForm) {
  const GrainParam p = GetParam();
  Machine m(cfg(1), opts(SchedMode::kHybrid, false));
  auto dur = std::make_shared<Cycles>(0);
  const std::uint64_t leaves = m.run([&](Context& ctx) -> std::uint64_t {
    const Cycles t0 = ctx.now();
    const std::uint64_t v = apps::grain_sequential(ctx, p.depth, p.delay);
    *dur = ctx.now() - t0;
    return v;
  });
  EXPECT_EQ(leaves, 1ull << p.depth);
  EXPECT_EQ(*dur, apps::grain_sequential_cycles(p.depth, p.delay));
}

TEST_P(GrainSweep, ParallelCountsAllLeaves) {
  const GrainParam p = GetParam();
  for (SchedMode mode : {SchedMode::kShm, SchedMode::kHybrid}) {
    Machine m(cfg(8), opts(mode));
    const std::uint64_t leaves = m.run([&](Context& ctx) -> std::uint64_t {
      return apps::grain_parallel(ctx, p.depth, p.delay);
    });
    EXPECT_EQ(leaves, 1ull << p.depth);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GrainSweep,
                         ::testing::Values(GrainParam{1, 0}, GrainParam{4, 0},
                                           GrainParam{6, 50},
                                           GrainParam{8, 10},
                                           GrainParam{10, 0}));

TEST(Grain, ZeroDepthIsOneLeaf) {
  Machine m(cfg(1), opts(SchedMode::kHybrid, false));
  EXPECT_EQ(m.run([](Context& ctx) -> std::uint64_t {
              return apps::grain_parallel(ctx, 0, 5);
            }),
            1u);
}

// ---------------------------------------------------------------------------
// aq
// ---------------------------------------------------------------------------

TEST(Aq, SequentialConvergesWithTolerance) {
  // Tighter tolerance must not move the integral by more than the coarser
  // tolerance's error budget.
  Machine m(cfg(1), opts(SchedMode::kHybrid, false));
  double v1 = 0, v2 = 0;
  m.run([&](Context& ctx) -> std::uint64_t {
    v1 = apps::aq_sequential(ctx, apps::aq_domain(), 0.5);
    v2 = apps::aq_sequential(ctx, apps::aq_domain(), 0.05);
    return 0;
  });
  EXPECT_NEAR(v1, v2, 1.0);  // same ballpark
  EXPECT_GT(std::fabs(v2), 1.0);  // non-trivial integral
}

TEST(Aq, EvalCountGrowsWithTightening) {
  const std::uint64_t coarse = apps::aq_eval_count(apps::aq_domain(), 1.0);
  const std::uint64_t fine = apps::aq_eval_count(apps::aq_domain(), 0.01);
  EXPECT_GT(fine, coarse * 4);
}

class AqModes : public ::testing::TestWithParam<SchedMode> {};

TEST_P(AqModes, ParallelEqualsSequentialBitForBit) {
  // The parallel decomposition reorders only additions of the same values;
  // with the fixed touch order the sums associate identically.
  double seq = 0;
  {
    Machine m(cfg(1), opts(GetParam(), false));
    m.run([&](Context& ctx) -> std::uint64_t {
      seq = apps::aq_sequential(ctx, apps::aq_domain(), 0.7);
      return 0;
    });
  }
  Machine m(cfg(16), opts(GetParam()));
  double par = 0;
  m.run([&](Context& ctx) -> std::uint64_t {
    par = apps::aq_parallel(ctx, apps::aq_domain(), 0.7);
    return 0;
  });
  EXPECT_NEAR(par, seq, 1e-9 * std::fabs(seq));
}

INSTANTIATE_TEST_SUITE_P(BothModes, AqModes,
                         ::testing::Values(SchedMode::kShm,
                                           SchedMode::kHybrid));

TEST(Aq, DeterministicAcrossRuns) {
  double a = 0, b = 0;
  for (double* out : {&a, &b}) {
    Machine m(cfg(8), opts(SchedMode::kHybrid));
    m.run([&](Context& ctx) -> std::uint64_t {
      *out = apps::aq_parallel(ctx, apps::aq_domain(), 0.3);
      return 0;
    });
  }
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// jacobi
// ---------------------------------------------------------------------------

struct JacobiParam {
  std::uint32_t nodes;
  std::uint32_t grid;
  bool msg;
  std::uint32_t iters;
};

class JacobiSweep : public ::testing::TestWithParam<JacobiParam> {};

TEST_P(JacobiSweep, MatchesReferenceEverywhere) {
  const JacobiParam p = GetParam();
  Machine m(cfg(p.nodes), opts(SchedMode::kHybrid, false));
  auto setup = apps::jacobi_setup(m, p.grid);
  const auto init = [](std::uint32_t r, std::uint32_t c) {
    return ((r * 7 + c * 13) % 31) * 0.125;
  };
  apps::jacobi_init(m, setup, init);
  CombiningBarrier bar(m.runtime(), CombiningBarrier::Mech::kShm, 2);
  for (NodeId n = 0; n < p.nodes; ++n) {
    m.start_thread(n, [&, p](Context& ctx) {
      apps::jacobi_node(ctx, setup, p.msg, p.iters, bar, m.bulk());
    });
  }
  m.run_started();
  const auto got = apps::jacobi_extract(m, setup, p.iters);
  const auto want = apps::jacobi_reference(p.grid, init, p.iters);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-12) << "cell " << i;
  }
  m.memory().check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JacobiSweep,
    ::testing::Values(JacobiParam{4, 8, false, 4}, JacobiParam{4, 8, true, 4},
                      JacobiParam{16, 16, false, 6},
                      JacobiParam{16, 16, true, 6},
                      JacobiParam{16, 32, true, 3},
                      JacobiParam{64, 32, false, 3},
                      JacobiParam{64, 32, true, 3},
                      JacobiParam{4, 8, true, 1},
                      JacobiParam{4, 8, false, 0},
                      JacobiParam{1, 8, false, 4},
                      JacobiParam{1, 8, true, 4},
                      JacobiParam{4, 16, false, 5},
                      JacobiParam{4, 16, true, 5}));

TEST(Jacobi, DiffusionSmoothsTheField) {
  // Physical sanity: relaxation contracts the range of the interior.
  const std::uint32_t grid = 16;
  const auto init = [](std::uint32_t r, std::uint32_t c) {
    return (r == 8 && c == 8) ? 64.0 : 0.0;
  };
  const auto after = apps::jacobi_reference(grid, init, 10);
  double mx = 0;
  for (std::uint32_t r = 1; r < grid - 1; ++r) {
    for (std::uint32_t c = 1; c < grid - 1; ++c) {
      mx = std::max(mx, after[r * grid + c]);
    }
  }
  EXPECT_LT(mx, 64.0);
  EXPECT_GT(mx, 0.0);
  // Pure Jacobi checkerboards: after an even number of iterations the heat
  // sits at even Manhattan distances from the spike.
  EXPECT_GT(after[8 * grid + 10], 0.0);
  EXPECT_EQ(after[8 * grid + 9], 0.0);
}

TEST(Jacobi, RejectsBadGeometry) {
  Machine m(cfg(4), opts(SchedMode::kHybrid, false));
  EXPECT_THROW(apps::jacobi_setup(m, 7), std::invalid_argument);  // 7 % 2 != 0
  Machine m3(cfg(3), opts(SchedMode::kHybrid, false));
  EXPECT_THROW(apps::jacobi_setup(m3, 8), std::invalid_argument);  // P not square
}

// ---------------------------------------------------------------------------
// accum
// ---------------------------------------------------------------------------

TEST(Accum, RandomArraysAllSizes) {
  Rng rng(99);
  for (std::uint32_t bytes : {64u, 256u, 1024u}) {
    Machine m(cfg(4), opts(SchedMode::kHybrid, false));
    m.run([&](Context& ctx) -> std::uint64_t {
      const GAddr arr = ctx.shmalloc(2, bytes);
      std::uint64_t want = 0;
      for (std::uint32_t i = 0; i < bytes / 8; ++i) {
        const std::uint64_t v = rng.below(1u << 20);
        m.memory().store().write_uint(arr + i * 8, 8, v);
        want += v;
      }
      const GAddr buf = ctx.shmalloc(0, bytes);
      EXPECT_EQ(apps::accum_shm(ctx, arr, bytes), want);
      EXPECT_EQ(apps::accum_msg(ctx, m.bulk(), arr, buf, bytes), want);
      return 0;
    });
  }
}

TEST(Accum, PrefetchDistanceDoesNotChangeTheSum) {
  Machine m(cfg(4), opts(SchedMode::kHybrid, false));
  m.run([&](Context& ctx) -> std::uint64_t {
    const GAddr arr = ctx.shmalloc(1, 512);
    std::uint64_t want = 0;
    for (int i = 0; i < 64; ++i) {
      m.memory().store().write_uint(arr + i * 8, 8, i * i);
      want += std::uint64_t{std::uint32_t(i)} * i;
    }
    for (std::uint32_t dist : {0u, 1u, 2u, 4u, 8u}) {
      EXPECT_EQ(apps::accum_shm(ctx, arr, 512, dist), want);
    }
    return 0;
  });
}

TEST(Accum, ShmFasterThanMsgForImmediateConsumption) {
  // The paper's headline claim for accum, as a regression guard.
  Machine m1(cfg(16), opts(SchedMode::kHybrid, false));
  Machine m2(cfg(16), opts(SchedMode::kHybrid, false));
  auto t_shm = std::make_shared<Cycles>(0);
  auto t_msg = std::make_shared<Cycles>(0);
  constexpr std::uint32_t kBytes = 2048;
  m1.run([&](Context& ctx) -> std::uint64_t {
    const GAddr arr = ctx.shmalloc(1, kBytes);
    const Cycles t0 = ctx.now();
    apps::accum_shm(ctx, arr, kBytes);
    *t_shm = ctx.now() - t0;
    return 0;
  });
  m2.run([&](Context& ctx) -> std::uint64_t {
    const GAddr arr = ctx.shmalloc(1, kBytes);
    const GAddr buf = ctx.shmalloc(0, kBytes);
    const Cycles t0 = ctx.now();
    apps::accum_msg(ctx, m2.bulk(), arr, buf, kBytes);
    *t_msg = ctx.now() - t0;
    return 0;
  });
  EXPECT_LT(*t_shm, *t_msg);
}

}  // namespace
}  // namespace alewife
