// Unit tests for the simulation kernel: event queue ordering, simulator
// clock, fibers, fiber pool, RNG determinism, stats.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fiber.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace alewife {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    q.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int hits = 0;
  std::function<void(Cycles)> chain = [&](Cycles t) {
    ++hits;
    if (t < 5) q.schedule_at(t + 1, [&chain, t] { chain(t + 1); });
  };
  q.schedule_at(0, [&chain] { chain(0); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(hits, 6);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Cycles> seen;
  sim.schedule(5, [&] { seen.push_back(sim.now()); });
  sim.schedule(12, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<Cycles>{5, 12}));
  EXPECT_EQ(sim.now(), 12u);
}

TEST(Simulator, MaxCyclesThrows) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule(10, forever); };
  sim.schedule(0, forever);
  EXPECT_THROW(sim.run(100), SimTimeout);
}

TEST(Simulator, StopHaltsLoop) {
  Simulator sim;
  int ran = 0;
  sim.schedule(1, [&] {
    ++ran;
    sim.stop();
  });
  sim.schedule(2, [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
}

TEST(Fiber, RunsToCompletion) {
  Fiber f;
  int state = 0;
  f.reset([&] { state = 42; });
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(state, 42);
}

TEST(Fiber, YieldAndResume) {
  Fiber f;
  std::vector<int> trace;
  f.reset([&] {
    trace.push_back(1);
    Fiber::yield();
    trace.push_back(2);
    Fiber::yield();
    trace.push_back(3);
  });
  f.resume();
  trace.push_back(10);
  f.resume();
  trace.push_back(20);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(trace, (std::vector<int>{1, 10, 2, 20, 3}));
}

TEST(Fiber, CurrentTracksExecution) {
  Fiber f;
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* inside = nullptr;
  f.reset([&] { inside = Fiber::current(); });
  f.resume();
  EXPECT_EQ(inside, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, ExceptionPropagatesToResumer) {
  Fiber f;
  f.reset([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(FiberPool, ReusesStacks) {
  FiberPool pool;
  auto f1 = pool.acquire([] {});
  f1->resume();
  pool.release(std::move(f1));
  EXPECT_EQ(pool.free_count(), 1u);
  int ran = 0;
  auto f2 = pool.acquire([&] { ran = 7; });
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.total_created(), 1u);  // recycled, not newly created
  f2->resume();
  EXPECT_EQ(ran, 7);
  EXPECT_TRUE(f2->finished());
  pool.release(std::move(f2));
}

TEST(FiberPool, ReusedFiberYieldsCorrectly) {
  FiberPool pool;
  auto f = pool.acquire([] {});
  f->resume();
  pool.release(std::move(f));

  int phase = 0;
  f = pool.acquire([&] {
    phase = 1;
    Fiber::yield();
    phase = 2;
  });
  f->resume();
  EXPECT_EQ(phase, 1);
  f->resume();
  EXPECT_EQ(phase, 2);
  EXPECT_TRUE(f->finished());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(13), 13u);
  }
}

TEST(Stats, CountersAndHistograms) {
  Stats s;
  s.add("x");
  s.add("x", 4);
  EXPECT_EQ(s.get("x"), 5u);
  EXPECT_EQ(s.get("missing"), 0u);
  s.sample("h", 10);
  s.sample("h", 20);
  s.sample("h", 3);
  const auto sum = s.summary("h");
  EXPECT_EQ(sum.count, 3u);
  EXPECT_EQ(sum.min, 3u);
  EXPECT_EQ(sum.max, 20u);
  EXPECT_DOUBLE_EQ(sum.mean(), 11.0);
}

}  // namespace
}  // namespace alewife
