// Unit tests for the simulation kernel: event queue ordering, simulator
// clock, fibers, fiber pool, RNG determinism, stats.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fiber.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace alewife {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    q.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int hits = 0;
  std::function<void(Cycles)> chain = [&](Cycles t) {
    ++hits;
    if (t < 5) q.schedule_at(t + 1, [&chain, t] { chain(t + 1); });
  };
  q.schedule_at(0, [&chain] { chain(0); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(hits, 6);
}

// The queue runs three tiers (ring / wheel / heap) behind one API. Events
// for the same timestamp can live in different tiers depending on how far
// ahead they were scheduled; the global (time, seq) order must still hold.
TEST(EventQueue, SameTimeAcrossTiersKeepsScheduleOrder) {
  EventQueue q;
  std::vector<char> order;
  // A is scheduled for t=70 from t=0 (70 ahead -> heap).
  q.schedule_at(70, [&] { order.push_back('A'); });
  // At t=20 an event schedules B for t=70 (50 ahead -> wheel).
  q.schedule_at(20, [&] { q.schedule_at(70, [&] { order.push_back('B'); }); });
  // At t=69 an event schedules C for t=70 (1 ahead -> wheel bucket).
  q.schedule_at(69, [&] { q.schedule_at(70, [&] { order.push_back('C'); }); });
  while (!q.empty()) q.run_next();
  // Scheduling order was A, B, C; execution at t=70 must match.
  EXPECT_EQ(order, (std::vector<char>{'A', 'B', 'C'}));
}

TEST(EventQueue, WheelHeapCrossoverBoundary) {
  EventQueue q;
  std::vector<Cycles> times;
  // From t=0: 63 ahead lands in the wheel, 64 and 65 ahead in the heap.
  // Schedule in reverse to prove ordering comes from timestamps, not tiers.
  q.schedule_at(65, [&] { times.push_back(65); });
  q.schedule_at(64, [&] { times.push_back(64); });
  q.schedule_at(63, [&] { times.push_back(63); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(times, (std::vector<Cycles>{63, 64, 65}));
}

TEST(EventQueue, WheelBucketReusedAfterMigration) {
  EventQueue q;
  std::vector<int> order;
  // t=10 occupies wheel bucket 10 & 63 = 10. After it drains, an event at
  // t=20 schedules t=74 — 54 ahead, which maps to the same bucket (74 & 63
  // = 10). The bucket must have been fully recycled by the migration swap.
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { q.schedule_at(74, [&] { order.push_back(2); }); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ScheduleNowIsFifoWithScheduleAtNow) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&] {
    // All three forms target the current timestamp; FIFO must hold across
    // the mix of schedule_now and schedule_at(now).
    q.schedule_now([&] { order.push_back(1); });
    q.schedule_at(5, [&] { order.push_back(2); });
    q.schedule_now([&] { order.push_back(3); });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, OversizedCaptureFallsBackToPool) {
  EventQueue q;
  // 96 bytes of capture — beyond the 48-byte inline buffer, so these go
  // through the pooled allocation path. Loop enough to recycle pool blocks.
  std::uint64_t sum = 0;
  for (int round = 0; round < 200; ++round) {
    std::uint64_t payload[12];
    for (int i = 0; i < 12; ++i) payload[i] = std::uint64_t(round) * 12 + i;
    q.schedule_at(Cycles(round), [&sum, payload] {
      for (std::uint64_t v : payload) sum += v;
    });
  }
  while (!q.empty()) q.run_next();
  std::uint64_t expect = 0;
  for (std::uint64_t v = 0; v < 2400; ++v) expect += v;
  EXPECT_EQ(sum, expect);
}

TEST(EventQueue, MoveOnlyCaptureIsSupported) {
  EventQueue q;
  // EventFn is move-only, so events can own resources via unique_ptr —
  // impossible with the old copyable std::function events.
  int out = 0;
  auto value = std::make_unique<int>(42);
  q.schedule_at(3, [&out, v = std::move(value)] { out = *v; });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(out, 42);
}

TEST(EventQueue, ClearAfterPartialDrainThenReuse) {
  EventQueue q;
  int ran = 0;
  // Populate all three tiers: ring (same-time), wheel (near), heap (far).
  q.schedule_at(0, [&] {
    ++ran;
    q.schedule_now([&] { ++ran; });
  });
  q.schedule_at(10, [&] { ++ran; });
  q.schedule_at(500, [&] { ++ran; });
  q.run_next();  // runs the t=0 event, leaving its schedule_now pending
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(q.empty());
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // The queue must be fully reusable after clear().
  q.schedule_at(1000, [&] { ran += 10; });
  EXPECT_EQ(q.next_time(), 1000u);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(ran, 11);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Cycles> seen;
  sim.schedule(5, [&] { seen.push_back(sim.now()); });
  sim.schedule(12, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<Cycles>{5, 12}));
  EXPECT_EQ(sim.now(), 12u);
}

TEST(Simulator, MaxCyclesThrows) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule(10, forever); };
  sim.schedule(0, forever);
  EXPECT_THROW(sim.run(100), SimTimeout);
}

TEST(Simulator, StopHaltsLoop) {
  Simulator sim;
  int ran = 0;
  sim.schedule(1, [&] {
    ++ran;
    sim.stop();
  });
  sim.schedule(2, [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
}

TEST(Fiber, RunsToCompletion) {
  Fiber f;
  int state = 0;
  f.reset([&] { state = 42; });
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(state, 42);
}

TEST(Fiber, YieldAndResume) {
  Fiber f;
  std::vector<int> trace;
  f.reset([&] {
    trace.push_back(1);
    Fiber::yield();
    trace.push_back(2);
    Fiber::yield();
    trace.push_back(3);
  });
  f.resume();
  trace.push_back(10);
  f.resume();
  trace.push_back(20);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(trace, (std::vector<int>{1, 10, 2, 20, 3}));
}

TEST(Fiber, CurrentTracksExecution) {
  Fiber f;
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* inside = nullptr;
  f.reset([&] { inside = Fiber::current(); });
  f.resume();
  EXPECT_EQ(inside, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, ExceptionPropagatesToResumer) {
  Fiber f;
  f.reset([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(FiberPool, ReusesStacks) {
  FiberPool pool;
  auto f1 = pool.acquire([] {});
  f1->resume();
  pool.release(std::move(f1));
  EXPECT_EQ(pool.free_count(), 1u);
  int ran = 0;
  auto f2 = pool.acquire([&] { ran = 7; });
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.total_created(), 1u);  // recycled, not newly created
  f2->resume();
  EXPECT_EQ(ran, 7);
  EXPECT_TRUE(f2->finished());
  pool.release(std::move(f2));
}

TEST(FiberPool, ReusedFiberYieldsCorrectly) {
  FiberPool pool;
  auto f = pool.acquire([] {});
  f->resume();
  pool.release(std::move(f));

  int phase = 0;
  f = pool.acquire([&] {
    phase = 1;
    Fiber::yield();
    phase = 2;
  });
  f->resume();
  EXPECT_EQ(phase, 1);
  f->resume();
  EXPECT_EQ(phase, 2);
  EXPECT_TRUE(f->finished());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(13), 13u);
  }
}

TEST(Stats, CountersAndHistograms) {
  Stats s;
  s.add("x");
  s.add("x", 4);
  EXPECT_EQ(s.get("x"), 5u);
  EXPECT_EQ(s.get("missing"), 0u);
  s.sample("h", 10);
  s.sample("h", 20);
  s.sample("h", 3);
  const auto sum = s.summary("h");
  EXPECT_EQ(sum.count, 3u);
  EXPECT_EQ(sum.min, 3u);
  EXPECT_EQ(sum.max, 20u);
  EXPECT_DOUBLE_EQ(sum.mean(), 11.0);
}

}  // namespace
}  // namespace alewife
