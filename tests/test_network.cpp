// Unit tests for the interconnect: topology/routing, latency model, link
// contention, delivery ordering.
#include <gtest/gtest.h>

#include "network/network.hpp"
#include "network/topology.hpp"
#include "sim/simulator.hpp"

namespace alewife {
namespace {

TEST(Topology, SquareMeshFor64) {
  MeshTopology t(64);
  EXPECT_EQ(t.width(), 8u);
  EXPECT_EQ(t.height(), 8u);
  EXPECT_EQ(t.hops(0, 0), 0u);
  EXPECT_EQ(t.hops(0, 7), 7u);
  EXPECT_EQ(t.hops(0, 63), 14u);  // corner to corner
  EXPECT_EQ(t.hops(9, 18), 2u);   // (1,1) -> (2,2)
}

TEST(Topology, HopsAreSymmetric) {
  MeshTopology t(64);
  for (NodeId a = 0; a < 64; a += 7) {
    for (NodeId b = 0; b < 64; b += 5) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
    }
  }
}

TEST(Topology, RouteLengthMatchesHops) {
  MeshTopology t(64);
  for (NodeId a = 0; a < 64; a += 3) {
    for (NodeId b = 0; b < 64; b += 11) {
      EXPECT_EQ(t.route(a, b).size(), t.hops(a, b));
    }
  }
}

TEST(Topology, DimensionOrderRoutesXFirst) {
  MeshTopology t(64);
  auto links = t.route(t.node_at(1, 1), t.node_at(3, 2));
  ASSERT_EQ(links.size(), 3u);
  EXPECT_EQ(links[0].dir, Dir::kEast);
  EXPECT_EQ(links[1].dir, Dir::kEast);
  EXPECT_EQ(links[2].dir, Dir::kSouth);
}

TEST(Topology, NonSquareCounts) {
  MeshTopology t(32);
  EXPECT_EQ(t.width() * t.height(), 32u);
  MeshTopology t2(2);
  EXPECT_EQ(t2.hops(0, 1), 1u);
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(sim_, cfg_, stats_) {}

  static MachineConfig make_cfg() {
    MachineConfig c;
    c.nodes = 64;
    return c;
  }

  Packet make_packet(NodeId src, NodeId dst, std::uint32_t payload = 0) {
    Packet p;
    p.src = src;
    p.dst = dst;
    p.type = 1;
    p.payload_bytes = payload;
    return p;
  }

  Simulator sim_;
  MachineConfig cfg_ = make_cfg();
  Stats stats_;
  Network net_;
};

TEST_F(NetworkTest, LatencyScalesWithDistance) {
  // Disjoint rows so the two packets share no links.
  const Cycles t1 = net_.send(make_packet(0, 1), 0);
  const Cycles t2 = net_.send(make_packet(16, 23), 0);
  EXPECT_GT(t2, t1);
  // hop latency applied per hop (1 hop vs 7 hops)
  EXPECT_EQ(t2 - t1, 6 * cfg_.cost.net_hop);
}

TEST_F(NetworkTest, SerializationScalesWithSize) {
  const Cycles small = net_.send(make_packet(0, 1, 0), 0);
  const Cycles big = net_.send(make_packet(8, 9, 4096), 0);
  // 4096 extra bytes at link_bytes_per_cycle each
  EXPECT_EQ(big - small, 4096 / cfg_.cost.link_bytes_per_cycle);
}

TEST_F(NetworkTest, DeliveryInvokesReceiver) {
  NodeId got = kInvalidNode;
  Cycles when = 0;
  net_.set_receiver(5, [&](Packet p) {
    got = p.src;
    when = sim_.now();
  });
  const Cycles expected = net_.send(make_packet(2, 5), 10);
  sim_.run();
  EXPECT_EQ(got, 2u);
  EXPECT_EQ(when, expected);
}

TEST_F(NetworkTest, SelfSendUsesLoopback) {
  net_.set_receiver(3, [](Packet) {});
  const Cycles t = net_.send(make_packet(3, 3), 0);
  // inject + serialization only; no hops
  const Cycles ser = net_.serialization(cfg_.cost.packet_header_bytes);
  EXPECT_EQ(t, cfg_.cost.net_inject + ser);
}

TEST_F(NetworkTest, ContentionDelaysSecondPacket) {
  // Two large packets over the same first link, injected simultaneously.
  const Cycles a = net_.send(make_packet(0, 7, 2048), 0);
  const Cycles b = net_.send(make_packet(0, 7, 2048), 0);
  EXPECT_GT(b, a);
  EXPECT_GT(stats_.get("net.link_stall_cycles"), 0u);
}

TEST_F(NetworkTest, DisjointPathsDoNotContend) {
  const Cycles a = net_.send(make_packet(0, 1, 2048), 0);
  const Cycles b = net_.send(make_packet(16, 17, 2048), 0);
  EXPECT_EQ(a - 0, b - 0);  // identical latency, no stall between them
}

TEST_F(NetworkTest, PacketsCounted) {
  net_.send(make_packet(0, 1), 0);
  net_.send(make_packet(1, 2), 0);
  EXPECT_EQ(stats_.get("net.packets"), 2u);
  EXPECT_GT(stats_.get("net.bytes"), 0u);
}

TEST_F(NetworkTest, SameRouteDeliveryStaysOrdered) {
  // Two packets injected back-to-back on the same route must not reorder:
  // the second's head queues behind the first's link reservations.
  std::vector<int> order;
  net_.set_receiver(7, [&](Packet p) { order.push_back(int(p.type)); });
  Packet a = make_packet(0, 7, 512);
  a.type = 1;
  Packet b = make_packet(0, 7, 0);
  b.type = 2;  // small packet chasing a big one
  net_.send(std::move(a), 0);
  net_.send(std::move(b), 1);
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(NetworkTest, HotspotSerializesAtTheLastLink) {
  // Eight senders converge on node 0: total delivery time approaches the
  // serialization sum at node 0's incoming links, far above one packet's
  // latency.
  int received = 0;
  Cycles last = 0;
  net_.set_receiver(0, [&](Packet) {
    ++received;
    last = sim_.now();
  });
  const Cycles lone = net_.send(make_packet(9, 0, 1024), 0);
  sim_.run();
  received = 0;
  for (NodeId s = 1; s <= 8; ++s) {
    net_.send(make_packet(s * 7 % 64, 0, 1024), sim_.now());
  }
  sim_.run();
  EXPECT_EQ(received, 8);
  EXPECT_GT(last - 0, lone);  // hotspot took longer than a lone packet
  EXPECT_GT(stats_.get("net.link_stall_cycles"), 0u);
}

TEST_F(NetworkTest, ZeroByteLinkNeverDivides) {
  // Guard: serialization of the bare header is at least one cycle.
  EXPECT_GE(net_.serialization(1), 1u);
  EXPECT_GE(net_.serialization(cfg_.cost.packet_header_bytes), 1u);
}

}  // namespace
}  // namespace alewife
