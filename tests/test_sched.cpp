// Scheduler edge cases: inlining vs stealing, wake-queue behaviour,
// desperate steals, deep nesting, stop/restart semantics, fiber-pool reuse,
// and determinism of whole runs.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "runtime/barrier.hpp"

namespace alewife {
namespace {

MachineConfig cfg(std::uint32_t nodes) {
  MachineConfig c;
  c.nodes = nodes;
  c.max_cycles = 500'000'000;
  return c;
}

RuntimeOptions opts(SchedMode m, bool steal = true) {
  RuntimeOptions o;
  o.mode = m;
  o.stealing = steal;
  return o;
}

class BothModes : public ::testing::TestWithParam<SchedMode> {};

TEST_P(BothModes, DeepNestedSpawnChain) {
  // A linear chain of nested spawns, each touched immediately — stresses
  // fiber-stack depth of inline execution.
  Machine m(cfg(2), opts(GetParam(), false));
  std::function<std::uint64_t(Context&, int)> chain =
      [&chain](Context& ctx, int depth) -> std::uint64_t {
    if (depth == 0) return 1;
    FutureId f = ctx.spawn([&chain, depth](Context& c) {
      return chain(c, depth - 1);
    });
    return ctx.touch(f) + 1;
  };
  const std::uint64_t r = m.run(
      [&chain](Context& ctx) -> std::uint64_t { return chain(ctx, 40); });
  EXPECT_EQ(r, 41u);
}

TEST_P(BothModes, ManySmallTasksAllComplete) {
  Machine m(cfg(8), opts(GetParam()));
  const std::uint64_t r = m.run([](Context& ctx) -> std::uint64_t {
    std::vector<FutureId> futs;
    for (int i = 0; i < 200; ++i) {
      futs.push_back(ctx.spawn([i](Context& c) -> std::uint64_t {
        c.compute(10 + i % 37);
        return std::uint64_t(i);
      }));
    }
    std::uint64_t sum = 0;
    for (FutureId f : futs) sum += ctx.touch(f);
    return sum;
  });
  EXPECT_EQ(r, 199u * 200 / 2);
  EXPECT_EQ(m.stats().get("rt.tasks_run"), 200u);
  m.memory().check_invariants();
}

TEST_P(BothModes, TouchOutOfOrder) {
  // Touch futures in reverse and shuffled order: only the last spawn can be
  // inlined; the rest resolve via suspend/wake or earlier completion.
  Machine m(cfg(4), opts(GetParam()));
  const std::uint64_t r = m.run([](Context& ctx) -> std::uint64_t {
    FutureId a = ctx.spawn([](Context& c) -> std::uint64_t {
      c.compute(400);
      return 1;
    });
    FutureId b = ctx.spawn([](Context& c) -> std::uint64_t {
      c.compute(50);
      return 2;
    });
    FutureId c_ = ctx.spawn([](Context& c) -> std::uint64_t {
      c.compute(150);
      return 4;
    });
    return ctx.touch(a) + ctx.touch(c_) + ctx.touch(b);
  });
  EXPECT_EQ(r, 7u);
}

TEST_P(BothModes, TouchTwiceReturnsSameValue) {
  Machine m(cfg(2), opts(GetParam(), false));
  m.run([](Context& ctx) -> std::uint64_t {
    FutureId f = ctx.spawn([](Context&) -> std::uint64_t { return 88; });
    EXPECT_EQ(ctx.touch(f), 88u);
    EXPECT_EQ(ctx.touch(f), 88u);  // second touch: already filled
    return 0;
  });
}

TEST_P(BothModes, MultipleWaitersOnOneFuture) {
  // Several threads (across nodes) touch the same unresolved future.
  Machine m(cfg(4), opts(GetParam(), false));
  auto fut = std::make_shared<FutureId>(kInvalidId);
  auto sum = std::make_shared<std::uint64_t>(0);
  HostBarrier published(m, 4);
  for (NodeId n = 0; n < 4; ++n) {
    m.start_thread(n, [fut, sum, n, &published](Context& ctx) {
      if (n == 0) {
        *fut = ctx.spawn([](Context& c) -> std::uint64_t {
          c.compute(3000);
          return 9;
        });
      }
      published.wait(ctx);
      if (n != 0) *sum += ctx.touch(*fut);
    });
  }
  m.run_started();
  EXPECT_EQ(*sum, 27u);
}

TEST_P(BothModes, InvokeChainAcrossNodes) {
  // Node 0 invokes on 1, which invokes on 2, which invokes on 3.
  Machine m(cfg(4), opts(GetParam(), false));
  const std::uint64_t r = m.run([](Context& ctx) -> std::uint64_t {
    FutureId f = ctx.invoke_msg(1, [](Context& c1) -> std::uint64_t {
      FutureId g = c1.invoke_msg(2, [](Context& c2) -> std::uint64_t {
        FutureId h = c2.invoke_msg(3, [](Context& c3) -> std::uint64_t {
          return c3.node();
        });
        return c2.touch(h) * 10 + c2.node();
      });
      return c1.touch(g) * 10 + c1.node();
    });
    return ctx.touch(f) * 10 + ctx.node();
  });
  EXPECT_EQ(r, 3210u);
}

TEST_P(BothModes, RunsAreDeterministic) {
  std::uint64_t cycles[2];
  for (int i = 0; i < 2; ++i) {
    Machine m(cfg(8), opts(GetParam()));
    m.run([](Context& ctx) -> std::uint64_t {
      std::vector<FutureId> futs;
      for (int t = 0; t < 60; ++t) {
        futs.push_back(ctx.spawn([t](Context& c) -> std::uint64_t {
          c.compute(30 + t % 11);
          return 1;
        }));
      }
      std::uint64_t s = 0;
      for (FutureId f : futs) s += ctx.touch(f);
      return s;
    });
    cycles[i] = m.now();
  }
  EXPECT_EQ(cycles[0], cycles[1]);
}

INSTANTIATE_TEST_SUITE_P(Modes, BothModes,
                         ::testing::Values(SchedMode::kShm,
                                           SchedMode::kHybrid));

TEST(Sched, InlineFastPathCountsAsInlined) {
  Machine m(cfg(1), opts(SchedMode::kHybrid, false));
  m.run([](Context& ctx) -> std::uint64_t {
    for (int i = 0; i < 10; ++i) {
      FutureId f = ctx.spawn([](Context&) -> std::uint64_t { return 1; });
      ctx.touch(f);
    }
    return 0;
  });
  EXPECT_EQ(m.stats().get("rt.touch_inlined"), 10u);
  EXPECT_EQ(m.stats().get("rt.touch_suspended"), 0u);
  EXPECT_EQ(m.stats().get("rt.steals"), 0u);
}

TEST(Sched, StolenWorkRunsRemotely) {
  // One node spawns chunky tasks with stealing enabled: some must migrate.
  Machine m(cfg(8), opts(SchedMode::kHybrid));
  auto ran_on = std::make_shared<std::vector<NodeId>>();
  m.run([ran_on](Context& ctx) -> std::uint64_t {
    std::vector<FutureId> futs;
    for (int i = 0; i < 32; ++i) {
      futs.push_back(ctx.spawn([ran_on](Context& c) -> std::uint64_t {
        c.compute(2000);
        ran_on->push_back(c.node());
        return 1;
      }));
    }
    std::uint64_t s = 0;
    for (FutureId f : futs) s += ctx.touch(f);
    return s;
  });
  bool any_remote = false;
  for (NodeId n : *ran_on) {
    if (n != 0) any_remote = true;
  }
  EXPECT_TRUE(any_remote);
  EXPECT_EQ(ran_on->size(), 32u);
}

TEST(Sched, FiberPoolBoundsGrowth) {
  // Thousands of tasks must not create thousands of fibers.
  Machine m(cfg(4), opts(SchedMode::kHybrid));
  m.run([](Context& ctx) -> std::uint64_t {
    for (int round = 0; round < 20; ++round) {
      std::vector<FutureId> futs;
      for (int i = 0; i < 50; ++i) {
        futs.push_back(ctx.spawn([](Context& c) -> std::uint64_t {
          c.compute(40);
          return 1;
        }));
      }
      for (FutureId f : futs) ctx.touch(f);
    }
    return 0;
  });
  EXPECT_GE(m.stats().get("rt.tasks_run"), 1000u);
}

TEST(Sched, StoppingDrainsCleanly) {
  // After run() returns, the machine quiesces: another run starts fresh.
  Machine m(cfg(8), opts(SchedMode::kHybrid));
  for (int phase = 0; phase < 3; ++phase) {
    const std::uint64_t r = m.run([phase](Context& ctx) -> std::uint64_t {
      FutureId f = ctx.spawn([phase](Context& c) -> std::uint64_t {
        c.compute(100 * (phase + 1));
        return std::uint64_t(phase);
      });
      return ctx.touch(f);
    });
    EXPECT_EQ(r, std::uint64_t(phase));
  }
  m.memory().check_invariants();
}

TEST(Sched, MixedModePrimitivesInOneRun) {
  // Barriers, copies, spawns and invokes all interleaved — the integration
  // smoke test of the whole runtime.
  Machine m(cfg(8), opts(SchedMode::kHybrid));
  CombiningBarrier bar(m.runtime(), CombiningBarrier::Mech::kMsg, 4);
  auto total = std::make_shared<std::uint64_t>(0);
  std::vector<GAddr> bufs, in;
  for (NodeId n = 0; n < 8; ++n) {
    bufs.push_back(m.shmalloc(n, 256));
    in.push_back(m.shmalloc(n, 256));  // separate landing area (no ring race)
  }

  for (NodeId n = 0; n < 8; ++n) {
    m.start_thread(n, [&, n](Context& ctx) {
      // Fill my buffer, then copy it to my right neighbour's landing area.
      for (int w = 0; w < 32; ++w) ctx.store(bufs[n] + w * 8, n * 100 + w);
      bar.wait(ctx);
      m.bulk().copy(ctx, in[(n + 1) % 8], bufs[n], 256, CopyImpl::kMsgDma);
      bar.wait(ctx);
      // Now my landing area holds my left neighbour's data.
      const NodeId left = (n + 7) % 8;
      EXPECT_EQ(ctx.load(in[n]), left * 100u);
      // Spawn a couple of tasks for good measure.
      FutureId f = ctx.spawn([](Context& c) -> std::uint64_t {
        c.compute(100);
        return 1;
      });
      *total += ctx.touch(f);
    });
  }
  m.run_started();
  EXPECT_EQ(*total, 8u);
  m.memory().check_invariants();
}

}  // namespace
}  // namespace alewife
