// Tests for full/empty-bit fine-grain synchronization (J-/L-structures):
// blocking semantics, producer-consumer handoff, take-vs-read, FIFO taker
// order, interaction with block multithreading, and the §2.2 bundled
// synchronization comparison.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "runtime/msg_types.hpp"

namespace alewife {
namespace {

MachineConfig cfg(std::uint32_t nodes, bool mt = false) {
  MachineConfig c;
  c.nodes = nodes;
  c.multithread_on_miss = mt;
  c.max_cycles = 200'000'000;
  return c;
}

RuntimeOptions quiet() {
  RuntimeOptions o;
  o.stealing = false;
  return o;
}

TEST(FullEmpty, ReaderBlocksUntilWriterFills) {
  Machine m(cfg(4), quiet());
  const GAddr cell = m.shmalloc(2, 16);
  auto got = std::make_shared<std::uint64_t>(0);
  auto read_at = std::make_shared<Cycles>(0);
  auto wrote_at = std::make_shared<Cycles>(0);

  m.start_thread(1, [=](Context& ctx) {
    *got = ctx.load_fe(cell);  // blocks: the word starts empty
    *read_at = ctx.now();
  });
  m.start_thread(0, [=](Context& ctx) {
    ctx.compute(3000);
    *wrote_at = ctx.now();
    ctx.store_fe(cell, 777);
  });
  m.run_started();
  EXPECT_EQ(*got, 777u);
  EXPECT_GT(*read_at, *wrote_at);  // the read completed after the fill
  m.memory().check_invariants();
}

TEST(FullEmpty, ImmediateReadWhenAlreadyFull) {
  Machine m(cfg(4), quiet());
  m.run([](Context& ctx) -> std::uint64_t {
    const GAddr cell = ctx.shmalloc(1, 16);
    ctx.store_fe(cell, 5);
    const Cycles t0 = ctx.now();
    EXPECT_EQ(ctx.load_fe(cell), 5u);
    EXPECT_LT(ctx.now() - t0, 100u);  // no waiting
    // Non-destructive: still full.
    EXPECT_EQ(ctx.load_fe(cell), 5u);
    return 0;
  });
}

TEST(FullEmpty, TakeEmptiesTheWord) {
  Machine m(cfg(4), quiet());
  auto taken = std::make_shared<std::uint64_t>(0);
  auto second_take_at = std::make_shared<Cycles>(0);
  const GAddr cell = m.shmalloc(1, 16);

  m.start_thread(0, [=](Context& ctx) {
    ctx.store_fe(cell, 11);
    *taken = ctx.take_fe(cell);  // consumes
    // The next take must block until someone refills.
    const std::uint64_t again = ctx.take_fe(cell);
    *second_take_at = ctx.now();
    EXPECT_EQ(again, 22u);
  });
  m.start_thread(1, [=](Context& ctx) {
    ctx.compute(5000);
    ctx.store_fe(cell, 22);
  });
  m.run_started();
  EXPECT_EQ(*taken, 11u);
  EXPECT_GT(*second_take_at, 5000u);
}

TEST(FullEmpty, MultipleReadersAllWake) {
  Machine m(cfg(8), quiet());
  const GAddr cell = m.shmalloc(7, 16);
  auto sum = std::make_shared<std::uint64_t>(0);
  for (NodeId n = 0; n < 6; ++n) {
    m.start_thread(n, [=](Context& ctx) { *sum += ctx.load_fe(cell); });
  }
  m.start_thread(6, [=](Context& ctx) {
    ctx.compute(2000);
    ctx.store_fe(cell, 10);
  });
  m.run_started();
  EXPECT_EQ(*sum, 60u);  // all six readers saw the value
}

TEST(FullEmpty, EachFillFeedsExactlyOneTaker) {
  // Three takers, three fills: every fill is consumed exactly once.
  Machine m(cfg(8), quiet());
  const GAddr cell = m.shmalloc(7, 16);
  auto taken = std::make_shared<std::vector<std::uint64_t>>();
  for (NodeId n = 0; n < 3; ++n) {
    m.start_thread(n, [=](Context& ctx) {
      taken->push_back(ctx.take_fe(cell));
    });
  }
  m.start_thread(5, [=](Context& ctx) {
    for (std::uint64_t v = 100; v < 103; ++v) {
      ctx.compute(1500);
      ctx.store_fe(cell, v);
    }
  });
  m.run_started();
  ASSERT_EQ(taken->size(), 3u);
  std::uint64_t sum = 0;
  for (std::uint64_t v : *taken) sum += v;
  EXPECT_EQ(sum, 100u + 101 + 102);
}

TEST(FullEmpty, ResetReEmptiesAfterUse) {
  Machine m(cfg(2), quiet());
  const GAddr cell = m.shmalloc(1, 16);
  auto blocked_until = std::make_shared<Cycles>(0);
  m.start_thread(0, [=](Context& ctx) {
    ctx.store_fe(cell, 1);
    ctx.reset_fe(cell);
    // Must block again even though the word was filled once.
    ctx.load_fe(cell);
    *blocked_until = ctx.now();
  });
  m.start_thread(1, [=](Context& ctx) {
    ctx.compute(4000);
    ctx.store_fe(cell, 2);
  });
  m.run_started();
  EXPECT_GT(*blocked_until, 4000u);
}

TEST(FullEmpty, PipelineThroughJStructureArray) {
  // Producer fills a J-structure array; the consumer reads element-by-
  // element, implicitly synchronized per word — fine-grain producer-consumer
  // without any flag protocol.
  Machine m(cfg(4), quiet());
  constexpr int kElems = 24;
  const GAddr arr = m.shmalloc(2, kElems * 8);
  auto sum = std::make_shared<std::uint64_t>(0);

  m.start_thread(0, [=](Context& ctx) {  // producer
    for (int i = 0; i < kElems; ++i) {
      ctx.compute(120);  // produce
      ctx.store_fe(arr + i * 8, i + 1);
    }
  });
  m.start_thread(1, [=](Context& ctx) {  // consumer
    for (int i = 0; i < kElems; ++i) {
      *sum += ctx.load_fe(arr + i * 8);
      ctx.compute(40);  // consume
    }
  });
  m.run_started();
  EXPECT_EQ(*sum, std::uint64_t{kElems} * (kElems + 1) / 2);
  m.memory().check_invariants();
}

TEST(FullEmpty, BlockedReaderSuspendsToScheduler) {
  // An FE fault traps and suspends the thread, so the core runs other work
  // (with or without block multithreading — Alewife's J-structure faults go
  // through software either way).
  Machine m(cfg(2, /*mt=*/false), quiet());
  const GAddr cell = m.shmalloc(1, 16);
  auto order = std::make_shared<std::vector<int>>();
  m.start_thread(0, [=](Context& ctx) {
    order->push_back(1);
    ctx.load_fe(cell);  // blocks; switches to the thread below
    order->push_back(3);
  });
  m.start_thread(0, [=](Context& ctx) {
    ctx.compute(50);
    order->push_back(2);
  });
  m.start_thread(1, [=](Context& ctx) {
    ctx.compute(2000);
    ctx.store_fe(cell, 1);
  });
  m.run_started();
  EXPECT_EQ(*order, (std::vector<int>{1, 2, 3}));
  EXPECT_GT(m.stats().get("proc.fe_traps"), 0u);
}

TEST(FullEmpty, SameNodeProducerConsumerCannotDeadlock) {
  // The producer thread is queued on the same node as the blocked consumer:
  // the FE trap must free the core so it can ever run.
  Machine m(cfg(1), quiet());
  const GAddr cell = m.shmalloc(0, 16);
  auto got = std::make_shared<std::uint64_t>(0);
  m.start_thread(0, [=](Context& ctx) { *got = ctx.take_fe(cell); });
  m.start_thread(0, [=](Context& ctx) {
    ctx.compute(500);
    ctx.store_fe(cell, 31);
  });
  m.run_started();
  EXPECT_EQ(*got, 31u);
}

TEST(FullEmpty, BundledSyncBeatsFlagPolling) {
  // §2.2's third defect, measured: producer hands one word to a remote
  // consumer. Flag-based shm (consumer polls a flag, then reads data) vs a
  // J-structure word (synchronization rides with the data).
  auto handoff_latency = [](bool use_fe) {
    MachineConfig c = cfg(4);
    RuntimeOptions o;
    o.stealing = false;
    Machine m(c, o);
    const GAddr data = m.shmalloc(2, 16);
    const GAddr flag = m.shmalloc(2, 16);
    auto produced_at = std::make_shared<Cycles>(0);
    auto consumed_at = std::make_shared<Cycles>(0);
    m.start_thread(0, [=](Context& ctx) {
      ctx.compute(1000);
      *produced_at = ctx.now();
      if (use_fe) {
        ctx.store_fe(data, 42);
      } else {
        ctx.store(data, 42);
        ctx.store(flag, 1);
      }
    });
    m.start_thread(1, [=](Context& ctx) {
      std::uint64_t v;
      if (use_fe) {
        v = ctx.load_fe(data);
      } else {
        while (ctx.load(flag) == 0) ctx.compute(8);
        v = ctx.load(data);
      }
      EXPECT_EQ(v, 42u);
      *consumed_at = ctx.now();
    });
    m.run_started();
    return *consumed_at - *produced_at;
  };
  const Cycles flag_poll = handoff_latency(false);
  const Cycles fe = handoff_latency(true);
  EXPECT_LT(fe, flag_poll);
}

}  // namespace
}  // namespace alewife
