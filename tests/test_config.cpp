// Configuration validation and miscellaneous small-type tests: GAddr
// packing, MachineConfig::validate error paths, backing-store allocation
// limits, and event-queue bookkeeping.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "memory/backing_store.hpp"
#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace alewife {
namespace {

TEST(GAddrPacking, RoundTrips) {
  const GAddr a = make_gaddr(37, 0x12345678);
  EXPECT_EQ(gaddr_node(a), 37u);
  EXPECT_EQ(gaddr_offset(a), 0x12345678u);
  EXPECT_EQ(gaddr_node(make_gaddr(0, 0)), 0u);
  EXPECT_EQ(gaddr_offset(make_gaddr(65535, 0xFFFFFFFF)), 0xFFFFFFFFu);
  EXPECT_EQ(gaddr_node(make_gaddr(65535, 0xFFFFFFFF)), 65535u);
}

TEST(GAddrPacking, ArithmeticStaysInNode) {
  const GAddr base = make_gaddr(5, 1024);
  EXPECT_EQ(gaddr_node(base + 512), 5u);
  EXPECT_EQ(gaddr_offset(base + 512), 1536u);
}

TEST(ConfigValidate, AcceptsDefaults) {
  MachineConfig c;
  EXPECT_NO_THROW(c.validate());
}

TEST(ConfigValidate, RejectsZeroNodes) {
  MachineConfig c;
  c.nodes = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ConfigValidate, RejectsNonPow2Line) {
  MachineConfig c;
  c.cache_line_bytes = 24;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ConfigValidate, RejectsTinyLine) {
  MachineConfig c;
  c.cache_line_bytes = 4;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ConfigValidate, RejectsZeroWays) {
  MachineConfig c;
  c.cache_ways = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ConfigValidate, RejectsCacheSmallerThanSet) {
  MachineConfig c;
  c.cache_size_bytes = 16;
  c.cache_ways = 4;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ConfigValidate, RejectsNonPow2Sets) {
  MachineConfig c;
  c.cache_size_bytes = 96;  // 96 / (16*2) = 3 sets
  c.cache_ways = 2;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ConfigValidate, RejectsOversizedNodeMemory) {
  MachineConfig c;
  c.mem_bytes_per_node = (1ull << 33);
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ConfigValidate, RejectsZeroLinkBandwidth) {
  MachineConfig c;
  c.cost.link_bytes_per_cycle = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ConfigValidate, RejectsWideMesh) {
  MachineConfig c;
  c.nodes = 4;
  c.mesh_width = 9;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ConfigValidate, MachineConstructorValidates) {
  MachineConfig c;
  c.nodes = 0;
  EXPECT_THROW(Machine m(c), std::invalid_argument);
}

TEST(BackingStoreLimits, AllocExhaustionThrows) {
  BackingStore store(2, 1024, 16);
  EXPECT_NO_THROW(store.alloc(0, 512));
  EXPECT_NO_THROW(store.alloc(0, 512));
  EXPECT_THROW(store.alloc(0, 16), std::bad_alloc);
  // Node 1's space is independent.
  EXPECT_NO_THROW(store.alloc(1, 1024));
}

TEST(BackingStoreLimits, AllocationsAreLineAligned) {
  BackingStore store(1, 4096, 16);
  store.alloc(0, 3);  // odd size
  const GAddr second = store.alloc(0, 8);
  EXPECT_EQ(gaddr_offset(second) % 16, 0u);
}

TEST(BackingStoreLimits, ResetAllocatorsReusesSpace) {
  BackingStore store(1, 64, 16);
  store.alloc(0, 64);
  EXPECT_THROW(store.alloc(0, 16), std::bad_alloc);
  store.reset_allocators();
  EXPECT_NO_THROW(store.alloc(0, 64));
}

TEST(EventQueueMisc, ClearDropsPending) {
  EventQueue q;
  int hits = 0;
  q.schedule_at(5, [&] { ++hits; });
  q.schedule_at(6, [&] { ++hits; });
  EXPECT_EQ(q.size(), 2u);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(hits, 0);
}

TEST(EventQueueMisc, ExecutedCountAccumulates) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_at(i, [] {});
  while (!q.empty()) q.run_next();
  EXPECT_EQ(q.events_executed(), 5u);
}

}  // namespace
}  // namespace alewife
