// Tests for the cost oracle and adaptive mechanism selection (§6 extension):
// prediction accuracy against measured costs, crossover sanity, and that the
// adaptive copy tracks the cheaper mechanism.
#include <gtest/gtest.h>

#include "core/adaptive.hpp"
#include "core/machine.hpp"

namespace alewife {
namespace {

MachineConfig cfg64() {
  MachineConfig c;
  c.nodes = 64;
  c.max_cycles = 100'000'000;
  return c;
}

RuntimeOptions quiet() {
  RuntimeOptions o;
  o.stealing = false;
  return o;
}

Cycles run_copy(Machine& m, CopyImpl impl, std::uint32_t block) {
  auto cycles = std::make_shared<Cycles>(0);
  m.run([&](Context& ctx) -> std::uint64_t {
    const GAddr src = ctx.shmalloc(0, block);
    for (std::uint32_t i = 0; i < block; i += 8) ctx.store(src + i, i);
    const GAddr dst = ctx.shmalloc(1, block);
    const Cycles t0 = ctx.now();
    m.bulk().copy(ctx, dst, src, block, impl);
    *cycles = ctx.now() - t0;
    return 0;
  });
  return *cycles;
}

TEST(CostOracle, PredictionsAreMonotoneInSize) {
  CostOracle o(cfg64());
  Cycles prev_shm = 0, prev_msg = 0;
  for (std::uint64_t n = 64; n <= 8192; n *= 2) {
    const Cycles shm = o.predict_copy_shm(n, 5);
    const Cycles msg = o.predict_copy_msg(n, 5);
    EXPECT_GT(shm, prev_shm);
    EXPECT_GT(msg, prev_msg);
    prev_shm = shm;
    prev_msg = msg;
  }
}

TEST(CostOracle, MessageMarginalCostIsLower) {
  CostOracle o(cfg64());
  const Cycles shm_slope =
      o.predict_copy_shm(8192, 5) - o.predict_copy_shm(4096, 5);
  const Cycles msg_slope =
      o.predict_copy_msg(8192, 5) - o.predict_copy_msg(4096, 5);
  EXPECT_LT(msg_slope, shm_slope);
}

TEST(CostOracle, CopyPredictionsTrackMeasurements) {
  CostOracle o(cfg64());
  for (std::uint32_t block : {256u, 1024u, 4096u}) {
    Machine ms(cfg64(), quiet());
    const Cycles shm_measured = run_copy(ms, CopyImpl::kShmLoop, block);
    Machine mm(cfg64(), quiet());
    const Cycles msg_measured = run_copy(mm, CopyImpl::kMsgDma, block);
    const double shm_err =
        double(o.predict_copy_shm(block, 1)) / double(shm_measured);
    const double msg_err =
        double(o.predict_copy_msg(block, 1)) / double(msg_measured);
    EXPECT_GT(shm_err, 0.7) << "block " << block;
    EXPECT_LT(shm_err, 1.4) << "block " << block;
    EXPECT_GT(msg_err, 0.7) << "block " << block;
    EXPECT_LT(msg_err, 1.4) << "block " << block;
  }
}

TEST(CostOracle, CrossoverIsSmall) {
  // On the default machine the message mechanism wins from small blocks on
  // (the paper found it ahead already at a few hundred bytes).
  CostOracle o(cfg64());
  const std::uint64_t cross = o.copy_crossover_bytes(1);
  EXPECT_GT(cross, 0u);
  EXPECT_LE(cross, 512u);
}

TEST(CostOracle, BarrierPredictionsOrderCorrectly) {
  CostOracle o(cfg64());
  // Message barrier beats shm barrier on 64 nodes (paper: 660 vs 1650).
  EXPECT_LT(o.predict_barrier_msg(64, 8), o.predict_barrier_shm(64, 2));
  // Both in a plausible range of the measured values.
  const Cycles shm = o.predict_barrier_shm(64, 2);
  EXPECT_GT(shm, 700u);
  EXPECT_LT(shm, 3500u);
  const Cycles msg = o.predict_barrier_msg(64, 8);
  EXPECT_GT(msg, 250u);
  EXPECT_LT(msg, 1300u);
}

TEST(Adaptive, ChoosesShmForTinyAndMsgForLarge) {
  Machine m(cfg64(), quiet());
  AdaptiveOps a(m);
  EXPECT_EQ(a.choose_copy(0, 1, 16), CopyImpl::kShmLoop);
  EXPECT_EQ(a.choose_copy(0, 1, 4096), CopyImpl::kMsgDma);
}

TEST(Adaptive, CopyIsCorrectAndNearOptimal) {
  for (std::uint32_t block : {32u, 4096u}) {
    Machine m(cfg64(), quiet());
    AdaptiveOps a(m);
    auto adaptive_cycles = std::make_shared<Cycles>(0);
    m.run([&](Context& ctx) -> std::uint64_t {
      const GAddr src = ctx.shmalloc(0, block);
      for (std::uint32_t i = 0; i < block; i += 8) ctx.store(src + i, i ^ 5);
      const GAddr dst = ctx.shmalloc(1, block);
      const Cycles t0 = ctx.now();
      a.copy(ctx, dst, src, block);
      *adaptive_cycles = ctx.now() - t0;
      for (std::uint32_t i = 0; i < block; i += 8) {
        EXPECT_EQ(ctx.load(dst + i), i ^ 5);
      }
      return 0;
    });
    Machine m_shm(cfg64(), quiet());
    Machine m_msg(cfg64(), quiet());
    const Cycles best =
        std::min(run_copy(m_shm, CopyImpl::kShmLoop, block),
                 run_copy(m_msg, CopyImpl::kMsgDma, block));
    // Within 25% of the better fixed mechanism (plus the tiny check cost).
    EXPECT_LE(*adaptive_cycles, best + best / 4 + 8) << "block " << block;
  }
}

TEST(Adaptive, MeanHopsMatchesMeshFormula) {
  CostOracle o(cfg64());
  // 8x8 mesh: 2 * (64-1)/(3*8) = 5.25
  EXPECT_NEAR(o.mean_hops(), 5.25, 1e-9);
}

}  // namespace
}  // namespace alewife
