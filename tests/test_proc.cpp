// Unit tests for the processor model: timing of compute/charge, interrupt
// preemption arithmetic, masked deferral, stolen cycles, block/dispatch, and
// the release hook contract.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "runtime/barrier.hpp"
#include "runtime/msg_types.hpp"

namespace alewife {
namespace {

MachineConfig cfg2() {
  MachineConfig c;
  c.nodes = 2;
  c.max_cycles = 50'000'000;
  return c;
}

RuntimeOptions quiet() {
  RuntimeOptions o;
  o.stealing = false;
  return o;
}

TEST(Proc, ComputeIsExactWithoutInterrupts) {
  Machine m(cfg2(), quiet());
  m.run([](Context& ctx) -> std::uint64_t {
    const Cycles t0 = ctx.now();
    ctx.compute(12345);
    EXPECT_EQ(ctx.now() - t0, 12345u);
    return 0;
  });
}

TEST(Proc, ChargeIsExactAndCheap) {
  Machine m(cfg2(), quiet());
  m.run([](Context& ctx) -> std::uint64_t {
    const Cycles t0 = ctx.now();
    for (int i = 0; i < 100; ++i) ctx.charge(3);
    EXPECT_EQ(ctx.now() - t0, 300u);
    return 0;
  });
}

TEST(Proc, InterruptPreemptsComputeAndStretchesIt) {
  Machine m(cfg2(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    auto handler_ran_at = std::make_shared<Cycles>(0);
    m.node(0).cmmu().set_handler(kMsgUserBase,
                                 [handler_ran_at](HandlerCtx& hc, MsgView&) {
                                   *handler_ran_at = hc.now();
                                   hc.charge(50);
                                 });
    // Node 1's CMMU fires a message at us mid-compute.
    MsgDescriptor d;
    d.dst = 0;
    d.type = kMsgUserBase;
    m.node(1).cmmu().send_raw(d, m.sim().now());

    const Cycles t0 = ctx.now();
    ctx.compute(5000);
    const Cycles took = ctx.now() - t0;
    const CostModel& c = m.config().cost;
    // The compute stretched by exactly the handler's footprint.
    EXPECT_EQ(took,
              5000 + c.interrupt_entry + 50 + c.interrupt_return);
    EXPECT_GT(*handler_ran_at, t0);
    EXPECT_LT(*handler_ran_at, t0 + 5000);
    return 0;
  });
}

TEST(Proc, BackToBackInterruptsSerialize) {
  Machine m(cfg2(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    auto times = std::make_shared<std::vector<Cycles>>();
    m.node(0).cmmu().set_handler(kMsgUserBase,
                                 [times](HandlerCtx& hc, MsgView&) {
                                   times->push_back(hc.now());
                                   hc.charge(40);
                                 });
    MsgDescriptor d;
    d.dst = 0;
    d.type = kMsgUserBase;
    // Two messages arriving (almost) together.
    m.node(1).cmmu().send_raw(d, m.sim().now());
    m.node(1).cmmu().send_raw(d, m.sim().now());
    ctx.compute(4000);
    EXPECT_EQ(times->size(), 2u);
    if (times->size() != 2) return 1;
    const CostModel& c = m.config().cost;
    // The second handler starts no earlier than the first one's end.
    EXPECT_GE((*times)[1], (*times)[0] + 40 + c.interrupt_return);
    return 0;
  });
}

TEST(Proc, InterruptDuringMemoryStallDelaysResume) {
  Machine m(cfg2(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    m.node(0).cmmu().set_handler(kMsgUserBase, [](HandlerCtx& hc, MsgView&) {
      hc.charge(500);  // long handler
    });
    MsgDescriptor d;
    d.dst = 0;
    d.type = kMsgUserBase;
    m.node(1).cmmu().send_raw(d, m.sim().now());

    // A remote load (~40 cycles) overlapping a 500-cycle handler: the load
    // completes while the handler occupies the core, so the thread resumes
    // only after the handler finishes.
    const GAddr a = ctx.shmalloc(1, 64);
    const Cycles t0 = ctx.now();
    ctx.load(a);
    EXPECT_GE(ctx.now() - t0, 500u);
    return 0;
  });
}

TEST(Proc, StolenCyclesPushOutCompute) {
  Machine m(cfg2(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    const Cycles t0 = ctx.now();
    // A LimitLESS-style trap fires mid-compute (delivered as an event, as
    // the protocol engine does it).
    m.sim().schedule_at(t0 + 100, [&m] {
      m.proc(0).steal_cycles(m.sim().now(), 77);
    });
    ctx.compute(1000);
    EXPECT_EQ(ctx.now() - t0, 1077u);
    return 0;
  });
}

TEST(Proc, MaskedHandlersChargeAtUnmask) {
  Machine m(cfg2(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    m.node(0).cmmu().set_handler(kMsgUserBase, [](HandlerCtx& hc, MsgView&) {
      hc.charge(64);
    });
    MsgDescriptor d;
    d.dst = 0;
    d.type = kMsgUserBase;
    m.node(1).cmmu().send_raw(d, m.sim().now());

    ctx.mask_interrupts();
    ctx.compute(1000);  // message arrives, defers
    const Cycles before = ctx.now();
    ctx.unmask_interrupts();
    const CostModel& c = m.config().cost;
    EXPECT_EQ(ctx.now() - before,
              c.interrupt_entry + 64 + c.interrupt_return);
    return 0;
  });
}

TEST(Proc, MaskedComputeIsNotPreempted) {
  Machine m(cfg2(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    m.node(0).cmmu().set_handler(kMsgUserBase, [](HandlerCtx& hc, MsgView&) {
      hc.charge(100);
    });
    MsgDescriptor d;
    d.dst = 0;
    d.type = kMsgUserBase;
    m.node(1).cmmu().send_raw(d, m.sim().now());

    ctx.mask_interrupts();
    const Cycles t0 = ctx.now();
    ctx.compute(3000);
    EXPECT_EQ(ctx.now() - t0, 3000u);  // untouched by the arrival
    ctx.unmask_interrupts();
    return 0;
  });
}

TEST(Proc, HandlerCtxTracksTime) {
  Machine m(cfg2(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    auto delta = std::make_shared<Cycles>(0);
    m.node(0).cmmu().set_handler(kMsgUserBase,
                                 [delta](HandlerCtx& hc, MsgView&) {
                                   const Cycles a = hc.now();
                                   hc.charge(13);
                                   hc.charge(7);
                                   *delta = hc.now() - a;
                                 });
    MsgDescriptor d;
    d.dst = 0;
    d.type = kMsgUserBase;
    m.node(1).cmmu().send_raw(d, m.sim().now());
    ctx.compute(2000);
    EXPECT_EQ(*delta, 20u);
    return 0;
  });
}

TEST(Proc, ThreadsInterleaveViaBlocking) {
  // Two threads on one node: while A waits on a future produced remotely,
  // B runs — the release hook hands the core over.
  MachineConfig c = cfg2();
  c.nodes = 2;
  Machine m(c, quiet());
  auto order = std::make_shared<std::vector<int>>();
  CombiningBarrier bar(m.runtime(), CombiningBarrier::Mech::kMsg, 8);

  m.start_thread(0, [order, &bar](Context& ctx) {
    order->push_back(1);
    bar.wait(ctx);  // blocks until node 1 arrives
    order->push_back(3);
  });
  m.start_thread(0, [order](Context& ctx) {
    ctx.compute(100);
    order->push_back(2);  // runs while the first thread is blocked
  });
  m.start_thread(1, [&bar](Context& ctx) {
    ctx.compute(10'000);
    bar.wait(ctx);
  });
  m.run_started();
  EXPECT_EQ(*order, (std::vector<int>{1, 2, 3}));
}

TEST(Proc, IdleRestartsAfterPhases) {
  // Machines can run several phases back to back.
  Machine m(cfg2(), quiet());
  for (int phase = 0; phase < 3; ++phase) {
    const std::uint64_t r = m.run([phase](Context& ctx) -> std::uint64_t {
      ctx.compute(100);
      return 100 + phase;
    });
    EXPECT_EQ(r, 100u + phase);
  }
}

TEST(WriteBuffer, BufferedStoresLandCorrectly) {
  Machine m(cfg2(), quiet());
  m.run([](Context& ctx) -> std::uint64_t {
    const GAddr a = ctx.shmalloc(1, 512);
    for (int i = 0; i < 64; ++i) ctx.store_buffered(a + i * 8, 900 + i);
    ctx.store_fence();
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(ctx.load(a + i * 8), 900u + i);
    }
    return 0;
  });
  m.memory().check_invariants();
}

TEST(WriteBuffer, FenceWaitsForDrain) {
  Machine m(cfg2(), quiet());
  m.run([&m](Context& ctx) -> std::uint64_t {
    const GAddr a = ctx.shmalloc(1, 64);
    const Cycles t0 = ctx.now();
    ctx.store_buffered(a, 7);
    const Cycles issue = ctx.now() - t0;
    EXPECT_LT(issue, 10u);  // retires into the buffer immediately
    ctx.store_fence();
    EXPECT_GT(ctx.now() - t0, 20u);  // the fence paid the remote latency
    EXPECT_EQ(m.proc(0).outstanding_stores(), 0u);
    return 0;
  });
}

TEST(WriteBuffer, OverlapsMissesUpToDepth) {
  // With a deeper buffer the same store stream completes faster.
  auto stream_time = [](std::uint32_t depth) {
    MachineConfig c = cfg2();
    c.store_buffer_depth = depth;
    Machine m(c, quiet());
    auto t = std::make_shared<Cycles>(0);
    m.run([&](Context& ctx) -> std::uint64_t {
      const GAddr a = ctx.shmalloc(1, 1024);
      const Cycles t0 = ctx.now();
      for (int i = 0; i < 64; ++i) ctx.store_buffered(a + i * 16, i);
      ctx.store_fence();
      *t = ctx.now() - t0;
      return 0;
    });
    return *t;
  };
  const Cycles d1 = stream_time(1);
  const Cycles d4 = stream_time(4);
  EXPECT_LT(d4 * 2, d1);  // at least 2x from 4-deep pipelining
}

TEST(WriteBuffer, DepthZeroFallsBackToBlockingStores) {
  MachineConfig c = cfg2();
  c.store_buffer_depth = 0;
  Machine m(c, quiet());
  m.run([](Context& ctx) -> std::uint64_t {
    const GAddr a = ctx.shmalloc(1, 64);
    const Cycles t0 = ctx.now();
    ctx.store_buffered(a, 3);
    EXPECT_GT(ctx.now() - t0, 20u);  // full blocking latency
    ctx.store_fence();               // no-op
    EXPECT_EQ(ctx.load(a), 3u);
    return 0;
  });
}

}  // namespace
}  // namespace alewife
