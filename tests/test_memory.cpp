// Unit and property tests for the coherent memory system: cache behaviour,
// MSI directory protocol, atomics, prefetch, LimitLESS, DMA hooks, and
// randomized stress with invariant checking.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "memory/mem_system.hpp"
#include "sim/rng.hpp"

namespace alewife {
namespace {

struct Harness {
  explicit Harness(std::uint32_t nodes = 8, std::uint32_t cache_bytes = 0) {
    cfg.nodes = nodes;
    if (cache_bytes != 0) cfg.cache_size_bytes = cache_bytes;
    store = std::make_unique<BackingStore>(cfg.nodes, cfg.mem_bytes_per_node,
                                           cfg.cache_line_bytes);
    net = std::make_unique<Network>(sim, cfg, stats);
    ms = std::make_unique<MemorySystem>(sim, *net, *store, cfg, stats);
    for (NodeId n = 0; n < cfg.nodes; ++n) {
      net->set_receiver(n, [this, n](Packet p) {
        ASSERT_EQ(p.klass, PacketClass::kCoherence);
        ms->on_packet(n, p);
      });
    }
  }

  /// Issue an access; returns (value, completion_time) after sim.run().
  struct Result {
    std::uint64_t value = 0;
    Cycles done_at = 0;
    bool completed = false;
  };

  std::shared_ptr<Result> issue(NodeId n, MemOp op, GAddr a, std::uint64_t v,
                                Cycles start) {
    auto r = std::make_shared<Result>();
    ms->access(n, op, a, 8, v, start, [this, r](std::uint64_t val) {
      r->value = val;
      r->done_at = sim.now();
      r->completed = true;
    });
    return r;
  }

  std::uint64_t load_now(NodeId n, GAddr a, Cycles start = 0) {
    auto r = issue(n, MemOp::kLoad, a, 0, start);
    sim.run();
    EXPECT_TRUE(r->completed);
    return r->value;
  }

  void store_now(NodeId n, GAddr a, std::uint64_t v, Cycles start = 0) {
    auto r = issue(n, MemOp::kStore, a, v, start);
    sim.run();
    EXPECT_TRUE(r->completed);
  }

  MachineConfig cfg;
  Simulator sim;
  Stats stats;
  std::unique_ptr<BackingStore> store;
  std::unique_ptr<Network> net;
  std::unique_ptr<MemorySystem> ms;
};

TEST(Cache, HitMissAndLru) {
  Cache c(1024, 16, 2);  // 32 sets, 2 ways
  EXPECT_EQ(c.lookup(0x100), LineState::kInvalid);
  c.install(0x100, LineState::kShared);
  EXPECT_EQ(c.lookup(0x100), LineState::kShared);
  EXPECT_EQ(c.lookup(0x108), LineState::kShared);  // same line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, EvictsLruWithinSet) {
  Cache c(64, 16, 2);  // 2 sets, 2 ways
  // Three lines mapping to the same set must evict the least recently used.
  std::vector<GAddr> same_set;
  for (GAddr a = 0; same_set.size() < 3; a += 16) {
    Cache probe(64, 16, 2);
    if (!same_set.empty()) {
      // Crude same-set detection: install first then check eviction victim.
    }
    same_set.push_back(a);
    if (same_set.size() == 3) break;
  }
  // Direct check via install results instead:
  c.install(same_set[0], LineState::kShared);
  c.install(same_set[1], LineState::kShared);
  c.install(same_set[2], LineState::kShared);
  int resident = 0;
  for (GAddr a : same_set) {
    if (c.peek(a) != LineState::kInvalid) ++resident;
  }
  EXPECT_LE(resident, 3);
  EXPECT_GE(resident, 2);  // at most one eviction among three installs
}

TEST(Cache, InvalidateRemoves) {
  Cache c(1024, 16, 2);
  c.install(0x40, LineState::kModified);
  EXPECT_EQ(c.invalidate(0x40), LineState::kModified);
  EXPECT_EQ(c.peek(0x40), LineState::kInvalid);
  EXPECT_EQ(c.invalidate(0x40), LineState::kInvalid);
}

TEST(MemSystem, LocalStoreLoad) {
  Harness h;
  const GAddr a = h.store->alloc(0, 64);
  h.store_now(0, a, 0xDEADBEEF);
  EXPECT_EQ(h.load_now(0, a), 0xDEADBEEFu);
  h.ms->check_invariants();
}

TEST(MemSystem, RemoteLoadSeesRemoteStore) {
  Harness h;
  const GAddr a = h.store->alloc(3, 64);
  h.store_now(1, a, 77);
  EXPECT_EQ(h.load_now(2, a), 77u);
  h.ms->check_invariants();
}

TEST(MemSystem, CacheHitFasterThanMiss) {
  Harness h;
  const GAddr a = h.store->alloc(5, 64);
  auto cold = h.issue(0, MemOp::kLoad, a, 0, 0);
  h.sim.run();
  const Cycles miss_time = cold->done_at;
  auto warm = h.issue(0, MemOp::kLoad, a, 0, h.sim.now());
  h.sim.run();
  const Cycles hit_time = warm->done_at - miss_time;
  EXPECT_LT(hit_time, miss_time);
  EXPECT_LE(hit_time, h.cfg.cost.cache_hit + 1);
}

TEST(MemSystem, LocalMissFasterThanRemoteMiss) {
  Harness h;
  const GAddr local = h.store->alloc(0, 64);
  const GAddr remote = h.store->alloc(7, 64);
  auto l = h.issue(0, MemOp::kLoad, local, 0, 0);
  h.sim.run();
  auto r = h.issue(0, MemOp::kLoad, remote, 0, h.sim.now());
  h.sim.run();
  EXPECT_LT(l->done_at, r->done_at - l->done_at);
}

TEST(MemSystem, WriteInvalidatesSharers) {
  Harness h;
  const GAddr a = h.store->alloc(0, 64);
  h.store_now(0, a, 1);
  // Nodes 1..4 cache the line shared.
  for (NodeId n = 1; n <= 4; ++n) h.load_now(n, a, h.sim.now());
  EXPECT_EQ(h.ms->cache(2).peek(a), LineState::kShared);
  // Node 5 writes: everyone else must drop their copy.
  h.store_now(5, a, 2, h.sim.now());
  EXPECT_EQ(h.ms->cache(2).peek(a), LineState::kInvalid);
  EXPECT_EQ(h.ms->cache(5).peek(a), LineState::kModified);
  EXPECT_GT(h.stats.get("mem.invalidations"), 0u);
  EXPECT_EQ(h.load_now(1, a, h.sim.now()), 2u);
  h.ms->check_invariants();
}

TEST(MemSystem, DirtyDataForwardedThroughHome) {
  Harness h;
  const GAddr a = h.store->alloc(4, 64);
  h.store_now(2, a, 99, 0);  // dirty in node 2's cache
  EXPECT_EQ(h.ms->cache(2).peek(a), LineState::kModified);
  // A third node reads: data must come via a FETCH through home 4.
  EXPECT_EQ(h.load_now(6, a, h.sim.now()), 99u);
  // Old owner downgraded to shared.
  EXPECT_EQ(h.ms->cache(2).peek(a), LineState::kShared);
  h.ms->check_invariants();
}

TEST(MemSystem, UpgradeFromShared) {
  Harness h;
  const GAddr a = h.store->alloc(0, 64);
  h.load_now(1, a);  // node 1 shared
  auto st = h.issue(1, MemOp::kStore, a, 5, h.sim.now());
  h.sim.run();
  EXPECT_TRUE(st->completed);
  EXPECT_EQ(h.ms->cache(1).peek(a), LineState::kModified);
  EXPECT_EQ(h.load_now(0, a, h.sim.now()), 5u);
  h.ms->check_invariants();
}

TEST(MemSystem, TestAndSetIsAtomic) {
  Harness h;
  const GAddr lock = h.store->alloc(0, 64);
  // Many nodes race a test-and-set at the same instant.
  std::vector<std::shared_ptr<Harness::Result>> rs;
  for (NodeId n = 0; n < 8; ++n) {
    rs.push_back(h.issue(n, MemOp::kTestAndSet, lock, 1, 0));
  }
  h.sim.run();
  int winners = 0;
  for (auto& r : rs) {
    ASSERT_TRUE(r->completed);
    if (r->value == 0) ++winners;
  }
  EXPECT_EQ(winners, 1);
  h.ms->check_invariants();
}

TEST(MemSystem, FetchAddCountsExactly) {
  Harness h;
  const GAddr ctr = h.store->alloc(3, 64);
  constexpr int kPerNode = 10;
  for (int i = 0; i < kPerNode; ++i) {
    for (NodeId n = 0; n < 8; ++n) {
      h.issue(n, MemOp::kFetchAdd, ctr, 1, Cycles(i) * 17 + n * 3);
    }
  }
  h.sim.run();
  EXPECT_EQ(h.load_now(0, ctr, h.sim.now()), 8u * kPerNode);
  h.ms->check_invariants();
}

TEST(MemSystem, PrefetchHidesLatency) {
  Harness h;
  const GAddr a = h.store->alloc(7, 64);
  // Prefetch, wait for the fill, then load: should hit.
  auto p = h.issue(0, MemOp::kPrefetch, a, 0, 0);
  h.sim.run();
  EXPECT_LE(p->done_at, h.cfg.cost.prefetch_issue + 2);  // non-blocking
  auto l = h.issue(0, MemOp::kLoad, a, 0, h.sim.now());
  h.sim.run();
  EXPECT_LE(l->done_at - p->done_at + h.cfg.cost.prefetch_issue,
            h.sim.now());  // sanity
  EXPECT_EQ(h.ms->cache(0).peek(a), LineState::kShared);
}

TEST(MemSystem, PrefetchMergesWithDemandLoad) {
  Harness h;
  const GAddr a = h.store->alloc(7, 64);
  h.store->write_uint(a, 8, 123);
  h.issue(0, MemOp::kPrefetch, a, 0, 0);
  auto l = h.issue(0, MemOp::kLoad, a, 0, 1);  // while fill in flight
  h.sim.run();
  ASSERT_TRUE(l->completed);
  EXPECT_EQ(l->value, 123u);
  h.ms->check_invariants();
}

TEST(MemSystem, PrefetchLimitDropsExcess) {
  Harness h;
  std::vector<GAddr> addrs;
  for (int i = 0; i < 10; ++i) addrs.push_back(h.store->alloc(7, 64));
  for (GAddr a : addrs) h.issue(0, MemOp::kPrefetch, a, 0, 0);
  h.sim.run();
  EXPECT_EQ(h.stats.get("mem.prefetch_issued"),
            h.cfg.max_outstanding_prefetches);
  EXPECT_EQ(h.stats.get("mem.prefetch_dropped"),
            10 - h.cfg.max_outstanding_prefetches);
}

TEST(MemSystem, ExclusivePrefetchEnablesFastStore) {
  Harness h;
  const GAddr a = h.store->alloc(7, 64);
  h.issue(0, MemOp::kPrefetchExcl, a, 0, 0);
  h.sim.run();
  EXPECT_EQ(h.ms->cache(0).peek(a), LineState::kModified);
  auto st = h.issue(0, MemOp::kStore, a, 9, h.sim.now());
  h.sim.run();
  EXPECT_LE(st->done_at - (st->done_at - h.cfg.cost.cache_hit),
            h.cfg.cost.cache_hit);
  h.ms->check_invariants();
}

TEST(MemSystem, DirtyEvictionPreservesValue) {
  // Tiny cache: 4 lines, direct-ish (2 sets x 2 ways).
  Harness h(8, 64);
  std::vector<GAddr> addrs;
  for (int i = 0; i < 12; ++i) addrs.push_back(h.store->alloc(2, 16));
  Cycles t = 0;
  for (int i = 0; i < 12; ++i) {
    auto r = h.issue(0, MemOp::kStore, addrs[i], 1000 + i, t);
    h.sim.run();
    t = h.sim.now();
  }
  EXPECT_GT(h.stats.get("mem.dirty_evictions"), 0u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(h.load_now(1, addrs[i], t), 1000u + i);
    t = h.sim.now();
  }
  h.ms->check_invariants();
}

TEST(MemSystem, LimitlessOverflowTraps) {
  Harness h;  // 8 nodes, 5 hardware pointers
  const GAddr a = h.store->alloc(0, 64);
  Cycles t = 0;
  for (NodeId n = 0; n < 8; ++n) {
    h.load_now(n, a, t);
    t = h.sim.now();
  }
  // Sharers 6, 7, 8 overflow the 5 hardware pointers.
  EXPECT_EQ(h.stats.get("mem.limitless_traps"), 3u);
  // A write must still invalidate all eight copies.
  h.store_now(3, a, 42, t);
  for (NodeId n = 0; n < 8; ++n) {
    if (n != 3) {
      EXPECT_EQ(h.ms->cache(n).peek(a), LineState::kInvalid);
    }
  }
  h.ms->check_invariants();
}

TEST(MemSystem, DmaFlushDowngradesDirtyLines) {
  Harness h;
  const GAddr a = h.store->alloc(2, 64);
  h.store_now(2, a, 7);  // dirty in local cache
  EXPECT_EQ(h.ms->cache(2).peek(a), LineState::kModified);
  const Cycles c = h.ms->dma_source_flush(2, a, 64);
  EXPECT_GT(c, 0u);
  EXPECT_EQ(h.ms->cache(2).peek(a), LineState::kShared);
  h.ms->check_invariants();
}

TEST(MemSystem, DmaInvalidateDropsLocalCopies) {
  Harness h;
  const GAddr a = h.store->alloc(2, 64);
  h.load_now(2, a);
  EXPECT_NE(h.ms->cache(2).peek(a), LineState::kInvalid);
  h.ms->dma_dest_invalidate(2, a, 64);
  EXPECT_EQ(h.ms->cache(2).peek(a), LineState::kInvalid);
  h.ms->check_invariants();
}

// Property test: randomized concurrent accesses keep the protocol coherent
// and atomic counters exact.
struct StressParam {
  std::uint32_t nodes;
  std::uint32_t lines;
  std::uint32_t ops;
  std::uint64_t seed;
  bool forward_direct = false;
};

class MemStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(MemStress, RandomOpsKeepInvariants) {
  const StressParam p = GetParam();
  Harness h(p.nodes);
  h.cfg.forward_dirty_direct = p.forward_direct;
  Rng rng(p.seed);

  std::vector<GAddr> addrs;
  std::vector<GAddr> counters;
  for (std::uint32_t i = 0; i < p.lines; ++i) {
    addrs.push_back(
        h.store->alloc(static_cast<NodeId>(rng.below(p.nodes)), 16));
  }
  counters.push_back(h.store->alloc(0, 16));
  counters.push_back(h.store->alloc(p.nodes - 1, 16));

  std::uint64_t adds = 0;
  for (std::uint32_t i = 0; i < p.ops; ++i) {
    const NodeId n = static_cast<NodeId>(rng.below(p.nodes));
    const Cycles start = rng.below(20000);
    switch (rng.below(5)) {
      case 0:
        h.issue(n, MemOp::kLoad, addrs[rng.below(p.lines)], 0, start);
        break;
      case 1:
        h.issue(n, MemOp::kStore, addrs[rng.below(p.lines)], rng.next(),
                start);
        break;
      case 2:
        h.issue(n, MemOp::kFetchAdd, counters[rng.below(2)], 1, start);
        ++adds;
        break;
      case 3:
        h.issue(n, MemOp::kPrefetch, addrs[rng.below(p.lines)], 0, start);
        break;
      default:
        h.issue(n, MemOp::kSwap, addrs[rng.below(p.lines)], rng.next(),
                start);
        break;
    }
  }
  h.sim.run();
  h.ms->check_invariants();

  std::uint64_t total = 0;
  total += h.load_now(0, counters[0], h.sim.now());
  total += h.load_now(0, counters[1], h.sim.now());
  EXPECT_EQ(total, adds);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MemStress,
    ::testing::Values(StressParam{2, 4, 300, 11}, StressParam{4, 8, 600, 22},
                      StressParam{8, 16, 1200, 33},
                      StressParam{16, 8, 1500, 44},
                      StressParam{64, 32, 2500, 55},
                      StressParam{8, 1, 800, 66},   // single hot line
                      StressParam{3, 2, 500, 77},
                      StressParam{8, 16, 1200, 88, true},   // direct fwd
                      StressParam{8, 1, 800, 99, true},     // fwd, hot line
                      StressParam{16, 8, 1500, 111, true}));

}  // namespace
}  // namespace alewife
