// Integration tests: Machine + runtime (threads, futures, both scheduler
// modes, stealing, barriers, remote invocation, bulk copy) and the
// applications' functional correctness.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/accum.hpp"
#include "apps/aq.hpp"
#include "apps/grain.hpp"
#include "apps/jacobi.hpp"
#include "core/machine.hpp"
#include "runtime/barrier.hpp"
#include "runtime/msg_types.hpp"

namespace alewife {
namespace {

MachineConfig small_cfg(std::uint32_t nodes) {
  MachineConfig c;
  c.nodes = nodes;
  c.max_cycles = 500'000'000;  // deadlock guard for tests
  return c;
}

RuntimeOptions mode_opt(SchedMode m, bool stealing = true) {
  RuntimeOptions o;
  o.mode = m;
  o.stealing = stealing;
  return o;
}

TEST(Machine, EntryThreadRunsAndReturns) {
  Machine m(small_cfg(4));
  const std::uint64_t r = m.run([](Context& ctx) -> std::uint64_t {
    ctx.compute(100);
    return 42;
  });
  EXPECT_EQ(r, 42u);
  EXPECT_GE(m.now(), 100u);
}

TEST(Machine, ComputeAdvancesThreadTime) {
  // Stealing off: otherwise the other node's steal-request interrupts
  // preempt the compute and (correctly) stretch it.
  Machine m(small_cfg(2), mode_opt(SchedMode::kHybrid, false));
  m.run([](Context& ctx) -> std::uint64_t {
    const Cycles t0 = ctx.now();
    ctx.compute(500);
    EXPECT_EQ(ctx.now(), t0 + 500);
    return 0;
  });
}

TEST(Machine, StealInterruptsStretchCompute) {
  Machine m(small_cfg(2), mode_opt(SchedMode::kHybrid, true));
  m.run([](Context& ctx) -> std::uint64_t {
    const Cycles t0 = ctx.now();
    ctx.compute(5000);
    EXPECT_GT(ctx.now(), t0 + 5000);  // preempted by steal requests
    return 0;
  });
  EXPECT_GT(m.stats().get("proc.interrupts"), 0u);
}

TEST(Machine, SharedMemoryOpsWork) {
  Machine m(small_cfg(4));
  m.run([](Context& ctx) -> std::uint64_t {
    const GAddr a = ctx.shmalloc(2, 64);
    ctx.store(a, 7);
    EXPECT_EQ(ctx.load(a), 7u);
    EXPECT_EQ(ctx.fetch_add(a, 3), 7u);
    EXPECT_EQ(ctx.load(a), 10u);
    EXPECT_EQ(ctx.swap(a, 1), 10u);
    EXPECT_EQ(ctx.test_and_set(a), 1u);
    return 0;
  });
  m.memory().check_invariants();
}

TEST(Machine, MessagesDeliverAndInterrupt) {
  Machine m(small_cfg(4));
  m.run([](Context& ctx) -> std::uint64_t {
    auto got = std::make_shared<std::uint64_t>(0);
    // A handler on node 2 echoes back to node 0.
    ctx.runtime().shared().peer(2).cmmu().set_handler(
        kMsgUserBase, [got](HandlerCtx& hc, MsgView& v) {
          const std::uint64_t x = v.operand(hc, 0);
          MsgDescriptor reply;
          reply.dst = v.src();
          reply.type = kMsgUserBase + 1;
          reply.operands = {x * 2};
          // send back through node 2's own CMMU: the view's charge model
          *got = x;
          (void)hc;
          (void)reply;
        });
    MsgDescriptor d;
    d.dst = 2;
    d.type = kMsgUserBase;
    d.operands = {21};
    ctx.send(d);
    // Wait for delivery.
    while (*got == 0) ctx.compute(16);
    EXPECT_EQ(*got, 21u);
    return 0;
  });
}

TEST(Machine, MessageDmaPayloadLands) {
  Machine m(small_cfg(4));
  m.run([](Context& ctx) -> std::uint64_t {
    const GAddr src = ctx.shmalloc(0, 256);
    const GAddr dst = ctx.shmalloc(3, 256);
    for (int i = 0; i < 32; ++i) ctx.store(src + i * 8, 100 + i);
    auto done = std::make_shared<bool>(false);
    ctx.runtime().shared().peer(3).cmmu().set_handler(
        kMsgUserBase + 7, [done, dst](HandlerCtx& hc, MsgView& v) {
          EXPECT_EQ(v.payload_bytes(), 256u);
          v.storeback(hc, dst);
          *done = true;
        });
    MsgDescriptor d;
    d.dst = 3;
    d.type = kMsgUserBase + 7;
    d.regions.push_back({src, 256});
    ctx.send(d);
    while (!*done) ctx.compute(16);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(ctx.load(dst + i * 8), 100u + i);
    }
    return 0;
  });
  m.memory().check_invariants();
}

class SchedModes : public ::testing::TestWithParam<SchedMode> {};

TEST_P(SchedModes, SpawnTouchSingleNode) {
  Machine m(small_cfg(1), mode_opt(GetParam(), false));
  const std::uint64_t r = m.run([](Context& ctx) -> std::uint64_t {
    FutureId f = ctx.spawn([](Context&) -> std::uint64_t { return 33; });
    return ctx.touch(f);  // must inline (nobody can steal)
  });
  EXPECT_EQ(r, 33u);
  EXPECT_EQ(m.stats().get("rt.touch_inlined"), 1u);
  EXPECT_EQ(m.stats().get("rt.touch_suspended"), 0u);
}

TEST_P(SchedModes, NestedSpawns) {
  Machine m(small_cfg(4), mode_opt(GetParam()));
  const std::uint64_t r = m.run([](Context& ctx) -> std::uint64_t {
    return apps::grain_parallel(ctx, 6, 10);  // 64 leaves
  });
  EXPECT_EQ(r, 64u);
  m.memory().check_invariants();
}

TEST_P(SchedModes, StealingDistributesWork) {
  Machine m(small_cfg(8), mode_opt(GetParam()));
  const std::uint64_t r = m.run([](Context& ctx) -> std::uint64_t {
    return apps::grain_parallel(ctx, 8, 200);  // 256 chunky leaves
  });
  EXPECT_EQ(r, 256u);
  EXPECT_GT(m.stats().get("rt.steals"), 0u);
  m.memory().check_invariants();
}

TEST_P(SchedModes, ParallelIsFasterThanSequentialForChunkyWork) {
  const SchedMode mode = GetParam();
  Cycles seq_time, par_time;
  {
    Machine m(small_cfg(1), mode_opt(mode, false));
    const Cycles t0 = m.now();
    m.run([](Context& ctx) -> std::uint64_t {
      return apps::grain_sequential(ctx, 8, 500);
    });
    seq_time = m.now() - t0;
  }
  {
    Machine m(small_cfg(8), mode_opt(mode));
    const Cycles t0 = m.now();
    m.run([](Context& ctx) -> std::uint64_t {
      return apps::grain_parallel(ctx, 8, 500);
    });
    par_time = m.now() - t0;
  }
  EXPECT_LT(par_time * 3, seq_time);  // speedup of at least 3 on 8 nodes
}

TEST_P(SchedModes, InvokeMsgRunsRemotely) {
  Machine m(small_cfg(4), mode_opt(GetParam(), false));
  m.run([](Context& ctx) -> std::uint64_t {
    auto where = std::make_shared<NodeId>(kInvalidNode);
    FutureId f = ctx.invoke_msg(2, [where](Context& c) -> std::uint64_t {
      *where = c.node();
      return 5;
    });
    EXPECT_EQ(ctx.touch(f), 5u);
    EXPECT_EQ(*where, 2u);
    return 0;
  });
}

TEST_P(SchedModes, InvokeShmRunsRemotely) {
  Machine m(small_cfg(4), mode_opt(GetParam(), false));
  m.run([](Context& ctx) -> std::uint64_t {
    auto where = std::make_shared<NodeId>(kInvalidNode);
    FutureId f = ctx.invoke_shm(3, [where](Context& c) -> std::uint64_t {
      *where = c.node();
      return 6;
    });
    EXPECT_EQ(ctx.touch(f), 6u);
    EXPECT_EQ(*where, 3u);
    return 0;
  });
}

INSTANTIATE_TEST_SUITE_P(BothModes, SchedModes,
                         ::testing::Values(SchedMode::kShm,
                                           SchedMode::kHybrid));

struct BarrierParam {
  std::uint32_t nodes;
  CombiningBarrier::Mech mech;
  std::uint32_t arity;
};

class BarrierTest : public ::testing::TestWithParam<BarrierParam> {};

TEST_P(BarrierTest, NoThreadPassesEarly) {
  const BarrierParam p = GetParam();
  Machine m(small_cfg(p.nodes), mode_opt(SchedMode::kHybrid, false));
  CombiningBarrier bar(m.runtime(), p.mech, p.arity);
  auto counter = std::make_shared<std::uint32_t>(0);
  constexpr int kEpisodes = 3;
  for (NodeId n = 0; n < p.nodes; ++n) {
    m.start_thread(n, [&bar, counter, n, &p](Context& ctx) {
      for (int e = 0; e < kEpisodes; ++e) {
        ctx.compute((n * 37 + e * 101) % 400);  // skewed arrivals
        ++*counter;
        bar.wait(ctx);
        // After the barrier, every participant has arrived in this episode.
        EXPECT_EQ(*counter, (e + 1) * p.nodes);
        bar.wait(ctx);  // second barrier before next episode's increments
      }
    });
  }
  m.run_started();
  EXPECT_EQ(*counter, kEpisodes * p.nodes);
  m.memory().check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BarrierTest,
    ::testing::Values(
        BarrierParam{4, CombiningBarrier::Mech::kShm, 2},
        BarrierParam{16, CombiningBarrier::Mech::kShm, 2},
        BarrierParam{16, CombiningBarrier::Mech::kShm, 4},
        BarrierParam{64, CombiningBarrier::Mech::kShm, 2},
        BarrierParam{4, CombiningBarrier::Mech::kMsg, 8},
        BarrierParam{16, CombiningBarrier::Mech::kMsg, 4},
        BarrierParam{64, CombiningBarrier::Mech::kMsg, 8},
        BarrierParam{1, CombiningBarrier::Mech::kShm, 2},
        BarrierParam{1, CombiningBarrier::Mech::kMsg, 8}));

TEST(BulkCopy, AllImplementationsCopyCorrectly) {
  for (CopyImpl impl :
       {CopyImpl::kShmLoop, CopyImpl::kShmPrefetch, CopyImpl::kMsgDma}) {
    Machine m(small_cfg(4), mode_opt(SchedMode::kHybrid, false));
    m.run([&m, impl](Context& ctx) -> std::uint64_t {
      const std::uint64_t n = 512;
      const GAddr src = ctx.shmalloc(0, n);
      const GAddr dst = ctx.shmalloc(2, n);
      for (std::uint64_t i = 0; i < n / 8; ++i) {
        ctx.store(src + i * 8, i * i + 1);
      }
      m.bulk().copy(ctx, dst, src, n, impl);
      for (std::uint64_t i = 0; i < n / 8; ++i) {
        EXPECT_EQ(ctx.load(dst + i * 8), i * i + 1) << "impl failed";
      }
      return 0;
    });
    m.memory().check_invariants();
  }
}

TEST(BulkCopy, PullFetchesRemoteBlock) {
  Machine m(small_cfg(4), mode_opt(SchedMode::kHybrid, false));
  m.run([&m](Context& ctx) -> std::uint64_t {
    const std::uint64_t n = 256;
    const GAddr remote = ctx.shmalloc(3, n);
    const GAddr local = ctx.shmalloc(0, n);
    for (std::uint64_t i = 0; i < n / 8; ++i) ctx.store(remote + i * 8, 7 * i);
    m.bulk().copy_pull(ctx, local, remote, n);
    for (std::uint64_t i = 0; i < n / 8; ++i) {
      EXPECT_EQ(ctx.load(local + i * 8), 7 * i);
    }
    return 0;
  });
}

TEST(Accum, BothVariantsComputeTheSameSum) {
  Machine m(small_cfg(4), mode_opt(SchedMode::kHybrid, false));
  m.run([&m](Context& ctx) -> std::uint64_t {
    const std::uint64_t n = 1024;
    const GAddr arr = ctx.shmalloc(2, n);
    std::uint64_t expect = 0;
    for (std::uint64_t i = 0; i < n / 8; ++i) {
      ctx.store(arr + i * 8, i + 3);
      expect += i + 3;
    }
    const GAddr buf = ctx.shmalloc(0, n);
    EXPECT_EQ(apps::accum_shm(ctx, arr, n), expect);
    EXPECT_EQ(apps::accum_msg(ctx, m.bulk(), arr, buf, n), expect);
    return 0;
  });
  m.memory().check_invariants();
}

TEST(Aq, ParallelMatchesSequential) {
  double seq = 0, par = 0;
  {
    Machine m(small_cfg(1), mode_opt(SchedMode::kHybrid, false));
    m.run([&seq](Context& ctx) -> std::uint64_t {
      seq = apps::aq_sequential(ctx, apps::aq_domain(), 2.0);
      return 0;
    });
  }
  {
    Machine m(small_cfg(8), mode_opt(SchedMode::kHybrid));
    m.run([&par](Context& ctx) -> std::uint64_t {
      par = apps::aq_parallel(ctx, apps::aq_domain(), 2.0);
      return 0;
    });
  }
  EXPECT_NEAR(seq, par, 1e-9 * std::fabs(seq));
}

class JacobiVariants : public ::testing::TestWithParam<bool> {};

TEST_P(JacobiVariants, MatchesHostReference) {
  const bool msg_variant = GetParam();
  const std::uint32_t grid = 16, iters = 5;
  Machine m(small_cfg(16), mode_opt(SchedMode::kHybrid, false));
  auto setup = apps::jacobi_setup(m, grid);
  const auto init = [](std::uint32_t r, std::uint32_t c) {
    return std::sin(0.3 * r) + std::cos(0.2 * c);
  };
  apps::jacobi_init(m, setup, init);
  CombiningBarrier bar(m.runtime(), msg_variant
                                        ? CombiningBarrier::Mech::kMsg
                                        : CombiningBarrier::Mech::kShm,
                       msg_variant ? 8 : 2);
  for (NodeId n = 0; n < 16; ++n) {
    m.start_thread(n, [&, msg_variant](Context& ctx) {
      apps::jacobi_node(ctx, setup, msg_variant, iters, bar, m.bulk());
    });
  }
  m.run_started();
  const auto got = apps::jacobi_extract(m, setup, iters);
  const auto want = apps::jacobi_reference(grid, init, iters);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-12) << "cell " << i;
  }
  m.memory().check_invariants();
}

INSTANTIATE_TEST_SUITE_P(ShmAndMsg, JacobiVariants, ::testing::Bool());

TEST(HostBarrierTest, AlignsThreads) {
  Machine m(small_cfg(4), mode_opt(SchedMode::kHybrid, false));
  HostBarrier hb(m, 4);
  auto after = std::make_shared<int>(0);
  for (NodeId n = 0; n < 4; ++n) {
    m.start_thread(n, [&hb, after, n](Context& ctx) {
      ctx.compute(n * 1000);
      hb.wait(ctx);
      ++*after;
    });
  }
  m.run_started();
  EXPECT_EQ(*after, 4);
}

}  // namespace
}  // namespace alewife
