// Whole-machine stress: randomized mixed workloads across the full
// configuration matrix (scheduler mode x dirty-forwarding x multithreading),
// checking functional conservation laws, coherence invariants, and
// determinism. These are the tests that catch cross-feature interactions.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "runtime/barrier.hpp"
#include "sim/rng.hpp"

namespace alewife {
namespace {

struct StressConfig {
  SchedMode mode;
  bool forward_direct;
  bool multithread;
  std::uint64_t seed;
};

class FullMatrix : public ::testing::TestWithParam<StressConfig> {};

/// A workload that uses every machine facility at once: each node's thread
/// does random remote reads/writes/atomics, spawns tasks that recurse, bulk
/// copies, and barriers — then global conservation laws are checked.
TEST_P(FullMatrix, MixedWorkloadConserves) {
  const StressConfig p = GetParam();
  MachineConfig c;
  c.nodes = 8;
  c.forward_dirty_direct = p.forward_direct;
  c.multithread_on_miss = p.multithread;
  c.rng_seed = p.seed;
  c.max_cycles = 500'000'000;
  RuntimeOptions o;
  o.mode = p.mode;
  o.stealing = true;
  Machine m(c, o);

  constexpr int kNodes = 8;
  constexpr int kRounds = 6;
  const GAddr counter = m.shmalloc(3, 64);   // atomics target
  std::vector<GAddr> cells;                  // scattered value cells
  for (int i = 0; i < 16; ++i) {
    cells.push_back(m.shmalloc(static_cast<NodeId>(i % kNodes), 16));
  }
  CombiningBarrier bar(m.runtime(), CombiningBarrier::Mech::kMsg, 4);
  auto task_sum = std::make_shared<std::uint64_t>(0);
  auto adds = std::make_shared<std::uint64_t>(0);

  for (NodeId n = 0; n < kNodes; ++n) {
    m.start_thread(n, [&, n](Context& ctx) {
      Rng r(p.seed * 977 + n);
      for (int round = 0; round < kRounds; ++round) {
        // Shared-memory phase.
        for (int i = 0; i < 10; ++i) {
          const GAddr cell = cells[r.below(cells.size())];
          switch (r.below(4)) {
            case 0:
              ctx.load(cell);
              break;
            case 1:
              ctx.store(cell, r.next());
              break;
            case 2:
              ctx.fetch_add(counter, 1);
              ++*adds;  // host tally (single-threaded host: exact)
              break;
            default:
              ctx.prefetch(cell);
              break;
          }
          ctx.compute(r.below(30));
        }
        // Full/empty + buffered-store phase: a private J-structure handoff
        // and a buffered burst, fenced before reuse.
        {
          const GAddr fe_cell = ctx.shmalloc(n, 16);
          ctx.store_fe(fe_cell, round + 1);
          if (ctx.load_fe(fe_cell) != std::uint64_t(round + 1)) {
            *task_sum += 1;  // poison the conservation check
          }
          ctx.reset_fe(fe_cell);
          const GAddr burst = ctx.shmalloc((n + 1) % kNodes, 64);
          for (int b = 0; b < 8; ++b) {
            ctx.store_buffered(burst + b * 8, b);
          }
          ctx.store_fence();
          if (ctx.load(burst + 56) != 7) *task_sum += 1;
        }

        // Task phase: a small unbalanced spawn tree.
        std::function<std::uint64_t(Context&, int)> tree =
            [&tree, &r](Context& cc, int d) -> std::uint64_t {
          cc.compute(20);
          if (d == 0) return 1;
          FutureId f = cc.spawn(
              [&tree, d](Context& c2) { return tree(c2, d - 1); });
          const std::uint64_t left = tree(cc, d - 1);
          return left + cc.touch(f);
        };
        const int depth = 2 + int(r.below(3));
        *task_sum += tree(ctx, depth) - (1ull << depth);  // expect 0 net

        // Bulk phase: copy a cell line to a private landing zone.
        const GAddr dst = ctx.shmalloc(n, 16);
        m.bulk().copy(ctx, dst, cells[n % cells.size()], 16,
                      r.below(2) ? CopyImpl::kMsgDma : CopyImpl::kShmLoop);

        bar.wait(ctx);
      }
    });
  }
  m.run_started();

  EXPECT_EQ(*task_sum, 0u);  // every spawn tree summed to its leaf count
  EXPECT_EQ(m.memory().store().read_uint(counter, 8), *adds);
  m.memory().check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FullMatrix,
    ::testing::Values(
        StressConfig{SchedMode::kShm, false, false, 11},
        StressConfig{SchedMode::kShm, true, false, 12},
        StressConfig{SchedMode::kShm, false, true, 13},
        StressConfig{SchedMode::kShm, true, true, 14},
        StressConfig{SchedMode::kHybrid, false, false, 15},
        StressConfig{SchedMode::kHybrid, true, false, 16},
        StressConfig{SchedMode::kHybrid, false, true, 17},
        StressConfig{SchedMode::kHybrid, true, true, 18},
        StressConfig{SchedMode::kShm, true, true, 19},
        StressConfig{SchedMode::kHybrid, true, true, 20}));

TEST(StressDeterminism, IdenticalSeedsIdenticalCycles) {
  for (SchedMode mode : {SchedMode::kShm, SchedMode::kHybrid}) {
    Cycles first = 0;
    for (int run = 0; run < 2; ++run) {
      MachineConfig c;
      c.nodes = 8;
      c.rng_seed = 777;
      RuntimeOptions o;
      o.mode = mode;
      Machine m(c, o);
      m.run([](Context& ctx) -> std::uint64_t {
        std::vector<FutureId> futs;
        for (int i = 0; i < 30; ++i) {
          futs.push_back(ctx.spawn([i](Context& cc) -> std::uint64_t {
            cc.compute(25 + i);
            return 1;
          }));
        }
        std::uint64_t s = 0;
        for (FutureId f : futs) s += ctx.touch(f);
        return s;
      });
      if (run == 0) {
        first = m.now();
      } else {
        EXPECT_EQ(m.now(), first) << "mode " << int(mode);
      }
    }
  }
}

TEST(StressDeterminism, DifferentSeedsUsuallyDiffer) {
  Cycles a, b;
  for (int which = 0; which < 2; ++which) {
    MachineConfig c;
    c.nodes = 8;
    c.rng_seed = which ? 1001 : 2002;
    RuntimeOptions o;
    o.mode = SchedMode::kHybrid;
    Machine m(c, o);
    m.run([](Context& ctx) -> std::uint64_t {
      std::vector<FutureId> futs;
      for (int i = 0; i < 30; ++i) {
        futs.push_back(ctx.spawn([](Context& cc) -> std::uint64_t {
          cc.compute(100);
          return 1;
        }));
      }
      for (FutureId f : futs) ctx.touch(f);
      return 0;
    });
    (which ? a : b) = m.now();
  }
  // Not a hard guarantee, but with steal victims randomized a collision
  // would be astonishing.
  EXPECT_NE(a, b);
}

TEST(StressScale, OneHundredTwentyEightNodes) {
  // Bigger than the paper's machine: the protocol and runtime must scale.
  MachineConfig c;
  c.nodes = 128;
  c.max_cycles = 500'000'000;
  RuntimeOptions o;
  o.mode = SchedMode::kHybrid;
  Machine m(c, o);
  const std::uint64_t r = m.run([](Context& ctx) -> std::uint64_t {
    std::vector<FutureId> futs;
    for (int i = 0; i < 256; ++i) {
      futs.push_back(ctx.spawn([](Context& cc) -> std::uint64_t {
        cc.compute(500);
        return 1;
      }));
    }
    std::uint64_t s = 0;
    for (FutureId f : futs) s += ctx.touch(f);
    return s;
  });
  EXPECT_EQ(r, 256u);
  EXPECT_GT(m.stats().get("rt.steals"), 20u);
  m.memory().check_invariants();
}

}  // namespace
}  // namespace alewife
