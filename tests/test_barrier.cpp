// Dedicated barrier tests: mechanism timing relationships, reuse across many
// episodes, stress under random skew, interplay with the scheduler, and
// degenerate cases.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "runtime/barrier.hpp"
#include "sim/rng.hpp"

namespace alewife {
namespace {

MachineConfig cfg(std::uint32_t nodes) {
  MachineConfig c;
  c.nodes = nodes;
  c.max_cycles = 200'000'000;
  return c;
}

RuntimeOptions quiet() {
  RuntimeOptions o;
  o.stealing = false;
  return o;
}

/// Run `episodes` barrier episodes with per-node compute skews drawn from
/// `rng`; verifies no thread ever passes episode e before all arrived.
void run_skewed(Machine& m, CombiningBarrier& bar, int episodes, Rng& rng) {
  const std::uint32_t nodes = m.nodes();
  auto arrivals = std::make_shared<std::uint32_t>(0);
  std::vector<Cycles> skews(nodes);
  for (auto& s : skews) s = rng.below(500);
  for (NodeId n = 0; n < nodes; ++n) {
    m.start_thread(n, [=, &bar](Context& ctx) {
      for (int e = 0; e < episodes; ++e) {
        ctx.compute(skews[(n + e) % nodes]);
        ++*arrivals;
        bar.wait(ctx);
        EXPECT_EQ(*arrivals, std::uint32_t(e + 1) * ctx.nodes())
            << "node " << n << " episode " << e;
        bar.wait(ctx);
      }
    });
  }
  m.run_started();
  EXPECT_EQ(*arrivals, episodes * nodes);
}

TEST(Barrier, MsgFasterThanShmAt64) {
  // The paper's headline §4.2 relation, as a regression guard.
  auto episode_cost = [](CombiningBarrier::Mech mech, std::uint32_t arity) {
    Machine m(cfg(64), quiet());
    CombiningBarrier bar(m.runtime(), mech, arity);
    auto t0 = std::make_shared<Cycles>(0);
    auto t1 = std::make_shared<Cycles>(0);
    for (NodeId n = 0; n < 64; ++n) {
      m.start_thread(n, [&bar, t0, t1, n](Context& ctx) {
        for (int e = 0; e < 4; ++e) {
          if (n == 0 && e == 1) *t0 = ctx.now();
          bar.wait(ctx);
        }
        if (n == 0) *t1 = ctx.now();
      });
    }
    m.run_started();
    return (*t1 - *t0) / 3;
  };
  const Cycles shm = episode_cost(CombiningBarrier::Mech::kShm, 2);
  const Cycles msg = episode_cost(CombiningBarrier::Mech::kMsg, 8);
  EXPECT_LT(msg * 2, shm);      // at least 2x better
  EXPECT_GT(msg * 6, shm);      // but not absurdly so
}

TEST(Barrier, ManyEpisodesReuse) {
  Machine m(cfg(8), quiet());
  CombiningBarrier bar(m.runtime(), CombiningBarrier::Mech::kShm, 2);
  Rng rng(31337);
  run_skewed(m, bar, 20, rng);
  m.memory().check_invariants();
}

TEST(Barrier, ManyEpisodesReuseMsg) {
  Machine m(cfg(8), quiet());
  CombiningBarrier bar(m.runtime(), CombiningBarrier::Mech::kMsg, 4);
  Rng rng(42424);
  run_skewed(m, bar, 20, rng);
}

struct SkewParam {
  std::uint32_t nodes;
  int mech;
  std::uint32_t arity;
  std::uint64_t seed;
};

class BarrierSkew : public ::testing::TestWithParam<SkewParam> {};

TEST_P(BarrierSkew, RandomSkewsNeverLeakAnEpisode) {
  const SkewParam p = GetParam();
  Machine m(cfg(p.nodes), quiet());
  CombiningBarrier bar(m.runtime(),
                       static_cast<CombiningBarrier::Mech>(p.mech), p.arity);
  Rng rng(p.seed);
  run_skewed(m, bar, 6, rng);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BarrierSkew,
    ::testing::Values(SkewParam{2, 0, 2, 1}, SkewParam{2, 1, 8, 2},
                      SkewParam{5, 0, 2, 3}, SkewParam{5, 1, 3, 4},
                      SkewParam{9, 0, 3, 5}, SkewParam{9, 1, 2, 6},
                      SkewParam{32, 0, 4, 7}, SkewParam{32, 1, 16, 8},
                      SkewParam{64, 0, 2, 9}, SkewParam{64, 1, 8, 10}));

TEST(Barrier, TwoIndependentBarriersCoexist) {
  Machine m(cfg(4), quiet());
  CombiningBarrier a(m.runtime(), CombiningBarrier::Mech::kMsg, 8,
                     kMsgUserBase + 10);
  CombiningBarrier b(m.runtime(), CombiningBarrier::Mech::kMsg, 8,
                     kMsgUserBase + 12);
  auto phase = std::make_shared<int>(0);
  for (NodeId n = 0; n < 4; ++n) {
    m.start_thread(n, [&a, &b, phase, n](Context& ctx) {
      ctx.compute(n * 31);
      a.wait(ctx);
      if (n == 0) *phase = 1;
      b.wait(ctx);
      EXPECT_EQ(*phase, 1);
    });
  }
  m.run_started();
}

TEST(Barrier, WorksWhileSchedulerSteals) {
  // Barrier threads coexist with a task storm: the barrier must still close
  // every episode while steal traffic and task execution interleave.
  MachineConfig c = cfg(8);
  RuntimeOptions o;
  o.mode = SchedMode::kHybrid;
  o.stealing = true;
  Machine m(c, o);
  CombiningBarrier bar(m.runtime(), CombiningBarrier::Mech::kMsg, 4);
  auto sum = std::make_shared<std::uint64_t>(0);

  for (NodeId n = 0; n < 8; ++n) {
    m.start_thread(n, [&bar, sum, n](Context& ctx) {
      if (n == 0) {
        // A spawn storm that spreads via stealing.
        std::vector<FutureId> futs;
        for (int i = 0; i < 40; ++i) {
          futs.push_back(ctx.spawn([](Context& cc) -> std::uint64_t {
            cc.compute(200);
            return 1;
          }));
        }
        for (FutureId f : futs) *sum += ctx.touch(f);
      }
      for (int e = 0; e < 3; ++e) {
        ctx.compute((n * 17 + e) % 64);
        bar.wait(ctx);
      }
    });
  }
  m.run_started();
  EXPECT_EQ(*sum, 40u);
  m.memory().check_invariants();
}

TEST(Barrier, SingleNodeIsInstant) {
  Machine m(cfg(1), quiet());
  for (auto mech : {CombiningBarrier::Mech::kShm,
                    CombiningBarrier::Mech::kMsg}) {
    CombiningBarrier bar(m.runtime(), mech, 2);
    auto cost = std::make_shared<Cycles>(0);
    m.start_thread(0, [&bar, cost](Context& ctx) {
      const Cycles t0 = ctx.now();
      bar.wait(ctx);
      bar.wait(ctx);
      *cost = ctx.now() - t0;
    });
    m.run_started();
    EXPECT_EQ(*cost, 0u);
  }
}

TEST(Barrier, ShmScalesSubLinearly) {
  // Tree combining: 4x the processors should cost far less than 4x.
  auto one = [](std::uint32_t nodes) {
    Machine m(cfg(nodes), quiet());
    CombiningBarrier bar(m.runtime(), CombiningBarrier::Mech::kShm, 2);
    auto t0 = std::make_shared<Cycles>(0);
    auto t1 = std::make_shared<Cycles>(0);
    for (NodeId n = 0; n < nodes; ++n) {
      m.start_thread(n, [&bar, t0, t1, n](Context& ctx) {
        for (int e = 0; e < 3; ++e) {
          if (n == 0 && e == 1) *t0 = ctx.now();
          bar.wait(ctx);
        }
        if (n == 0) *t1 = ctx.now();
      });
    }
    m.run_started();
    return (*t1 - *t0) / 2;
  };
  const Cycles c16 = one(16);
  const Cycles c64 = one(64);
  EXPECT_GT(c64, c16);
  EXPECT_LT(c64, c16 * 4);
}

}  // namespace
}  // namespace alewife
